package core

// Geometry planning. PlanPartition sizes a store's segment count and log
// regions for a given SSD partition and object shape, and reports the
// resulting index DRAM footprint and object capacity — the quantities
// behind Table 3's "Max. Capacity" row and the paper's claim that LEED
// indexes the whole JBOF flash with well under half a byte of DRAM per
// object (C1).

// Geometry is the result of planning one partition.
type Geometry struct {
	NumSegments  int
	KeyLogBytes  int64
	ValLogBytes  int64
	SwapLogBytes int64
	// ObjectBudget is the number of objects the partition can hold at the
	// planned utilization.
	ObjectBudget int64
	// DRAMBytes is the segment table footprint.
	DRAMBytes int64
	// DRAMPerObject is the index bytes charged per object.
	DRAMPerObject float64
}

// PlanOpts tune the planner.
type PlanOpts struct {
	BlockSize int     // default 512
	MaxChain  int     // default 4
	FillChain float64 // target average chain occupancy as a fraction of MaxChain; default 0.5
	Headroom  float64 // log over-provisioning for compaction slack; default 1.25
	SwapFrac  float64 // fraction of the partition reserved as swap region; default 0.03
}

func (o *PlanOpts) setDefaults() {
	if o.BlockSize == 0 {
		o.BlockSize = 512
	}
	if o.MaxChain == 0 {
		o.MaxChain = 4
	}
	if o.FillChain == 0 {
		o.FillChain = 0.5
	}
	if o.Headroom == 0 {
		o.Headroom = 1.25
	}
	if o.SwapFrac == 0 {
		o.SwapFrac = 0.03
	}
}

// PlanPartition computes a geometry for a partition of partBytes holding
// objects with the given key and value sizes.
func PlanPartition(partBytes int64, keyLen, valLen int, opts PlanOpts) Geometry {
	opts.setDefaults()
	bs := int64(opts.BlockSize)
	itemSize := int64(itemHdrSize + keyLen)
	entrySize := int64(ValueEntrySize(keyLen, valLen))
	itemsPerBucket := (bs - bucketHdrSize) / itemSize
	if itemsPerBucket < 1 {
		itemsPerBucket = 1
	}
	targetChain := float64(opts.MaxChain) * opts.FillChain
	if targetChain < 1 {
		targetChain = 1
	}
	itemsPerSeg := float64(itemsPerBucket) * targetChain

	// Per-object steady-state space: its value entry plus its share of the
	// segment array, both inflated by compaction headroom.
	keyPerObj := float64(bs) / float64(itemsPerBucket) * opts.Headroom
	valPerObj := float64(entrySize) * opts.Headroom
	// Reserve 64KiB for the superblock and rounding slack.
	usable := float64(partBytes)*(1-opts.SwapFrac) - 65536
	if usable < float64(bs) {
		usable = float64(bs)
	}
	objects := int64(usable / (keyPerObj + valPerObj))
	if objects < 1 {
		objects = 1
	}
	numSegs := int(float64(objects)/itemsPerSeg) + 1

	g := Geometry{
		NumSegments:  numSegs,
		KeyLogBytes:  int64(float64(objects) * keyPerObj),
		ValLogBytes:  int64(float64(objects) * valPerObj),
		SwapLogBytes: int64(float64(partBytes) * opts.SwapFrac),
		ObjectBudget: objects,
		DRAMBytes:    int64(numSegs) * segEntryDRAMBytes,
	}
	// Round the key log to whole blocks.
	g.KeyLogBytes = (g.KeyLogBytes/bs + 1) * bs
	g.DRAMPerObject = float64(g.DRAMBytes) / float64(objects)
	return g
}

// MaxCapacityFraction returns the fraction of raw flash that holds live
// key+value payload at tight packing (Headroom ~1.05), the number Table 3
// reports for LEED. keyLen/valLen describe the object shape.
func MaxCapacityFraction(partBytes int64, keyLen, valLen int) float64 {
	g := PlanPartition(partBytes, keyLen, valLen, PlanOpts{Headroom: 1.05})
	return float64(g.ObjectBudget*int64(keyLen+valLen)) / float64(partBytes)
}

// StoreConfigFor builds a Config from a geometry. The caller fills Kernel,
// Device, DevID, Exec, and RegionOff.
func StoreConfigFor(g Geometry, base Config) Config {
	base.NumSegments = g.NumSegments
	base.KeyLogBytes = g.KeyLogBytes
	base.ValLogBytes = g.ValLogBytes
	base.SwapLogBytes = g.SwapLogBytes
	return base
}
