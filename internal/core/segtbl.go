package core

import (
	"leed/internal/runtime"
)

// SegTbl is the in-DRAM segment table (§3.2.3): one entry per segment
// holding the chain length and the key-log offset of the segment's bucket
// array, plus a lock bit. This is the *entire* DRAM index — with dozens of
// keys per segment it costs well under half a byte of DRAM per object,
// which is what makes the hybrid index fit the SmartNIC JBOF's skewed
// storage hierarchy (C1).
type SegTbl struct {
	entries []segEntry
}

// segEntry is one segment's DRAM state. The accounting below charges 8
// bytes, matching the paper's "segment index contains K bits for the chain
// length and a 4B offset" plus the lock bits, rounded to what a packed
// hashtable would hand out. The lock has reader-writer semantics: GETs
// share a segment (they only read the key log), while PUT/DEL/compaction
// take it exclusively. Grants are FIFO so hot-segment readers cannot
// starve a writer.
type segEntry struct {
	off      int64 // logical offset of the segment array; -1 = empty
	chainLen uint8
	// devID names the SSD holding the segment array: the store's own key
	// log normally, or a peer's swap region while the segment is swapped
	// out (§3.6: "an SSD identifier so that one can locate the correct
	// key log position").
	devID   uint8
	remote  bool
	writer  bool
	readers int
	waiters []segWaiter
}

type segWaiter struct {
	t       runtime.Ticket
	write   bool
	granted *bool
}

// grant admits waiters in FIFO order: a run of readers, or one writer.
func (e *segEntry) grant() {
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		if w.write {
			if e.writer || e.readers > 0 {
				return
			}
			e.writer = true
		} else {
			if e.writer {
				return
			}
			e.readers++
		}
		e.waiters = e.waiters[1:]
		*w.granted = true
		w.t.Wake()
	}
}

// segEntryDRAMBytes is the DRAM charge per entry for capacity accounting:
// the paper's K chain-length bits plus a 4B key-log offset plus the lock
// bit, padded to 8 bytes as a packed hashtable would store it. (The Go
// struct behind it is larger; the model charges what the paper's layout
// costs.)
const segEntryDRAMBytes = 8

// NewSegTbl creates a table of n segments, all empty.
func NewSegTbl(n int) *SegTbl {
	t := &SegTbl{entries: make([]segEntry, n)}
	for i := range t.entries {
		t.entries[i].off = -1
	}
	return t
}

// NumSegments returns the table size.
func (t *SegTbl) NumSegments() int { return len(t.entries) }

// DRAMBytes returns the table's modeled DRAM footprint.
func (t *SegTbl) DRAMBytes() int64 { return int64(len(t.entries)) * segEntryDRAMBytes }

// Lookup returns (offset, chainLen, present) for a segment.
func (t *SegTbl) Lookup(seg uint32) (off int64, chainLen int, ok bool) {
	e := &t.entries[seg]
	if e.off < 0 {
		return 0, 0, false
	}
	return e.off, int(e.chainLen), true
}

// Location returns where the segment array lives: (devID, remote). remote
// reports that the array sits in devID's swap region rather than the home
// key log.
func (t *SegTbl) Location(seg uint32) (devID uint8, remote bool) {
	e := &t.entries[seg]
	return e.devID, e.remote
}

// Set records the segment's new array location in the home key log.
func (t *SegTbl) Set(seg uint32, off int64, chainLen int) {
	e := &t.entries[seg]
	e.off = off
	e.chainLen = uint8(chainLen)
	e.remote = false
}

// SetRemote records the segment's array as living in peer devID's swap
// region (§3.6).
func (t *SegTbl) SetRemote(seg uint32, off int64, chainLen int, devID uint8) {
	e := &t.entries[seg]
	e.off = off
	e.chainLen = uint8(chainLen)
	e.devID = devID
	e.remote = true
}

// Clear empties a segment (used when compaction prunes it to nothing).
func (t *SegTbl) Clear(seg uint32) { t.entries[seg].off = -1; t.entries[seg].chainLen = 0 }

func (t *SegTbl) acquire(p runtime.Task, seg uint32, write bool) {
	e := &t.entries[seg]
	if len(e.waiters) == 0 {
		if write && !e.writer && e.readers == 0 {
			e.writer = true
			return
		}
		if !write && !e.writer {
			e.readers++
			return
		}
	}
	granted := false
	e.waiters = append(e.waiters, segWaiter{t: p.Prepare(), write: write, granted: &granted})
	for !granted {
		p.Park()
		if !granted {
			for i := range e.waiters {
				if e.waiters[i].granted == &granted {
					e.waiters[i].t = p.Prepare()
				}
			}
		}
	}
}

// Lock takes the segment exclusively (PUT/DEL/compaction/COPY), blocking
// FIFO-fair. This is the paper's per-segment lock bit (§3.2.2).
func (t *SegTbl) Lock(p runtime.Task, seg uint32) { t.acquire(p, seg, true) }

// RLock takes the segment shared: concurrent GETs of one segment proceed
// together, which is what lets a hot key saturate the drive rather than the
// lock.
func (t *SegTbl) RLock(p runtime.Task, seg uint32) { t.acquire(p, seg, false) }

// TryLock acquires the exclusive lock if immediately free; compaction uses
// it to skip segments busy with PUT/DEL (§3.3.1).
func (t *SegTbl) TryLock(seg uint32) bool {
	e := &t.entries[seg]
	if e.writer || e.readers > 0 || len(e.waiters) > 0 {
		return false
	}
	e.writer = true
	return true
}

// Locked reports whether the segment is exclusively held.
func (t *SegTbl) Locked(seg uint32) bool { return t.entries[seg].writer }

// Unlock releases the exclusive lock and grants the next waiters.
func (t *SegTbl) Unlock(seg uint32) {
	e := &t.entries[seg]
	if !e.writer {
		panic("core: Unlock of unlocked segment")
	}
	e.writer = false
	e.grant()
}

// RUnlock releases a shared hold.
func (t *SegTbl) RUnlock(seg uint32) {
	e := &t.entries[seg]
	if e.readers <= 0 {
		panic("core: RUnlock without RLock")
	}
	e.readers--
	e.grant()
}

// FNV-1a 64-bit constants; must stay in lockstep with hash/fnv so every
// hash ever written to flash keeps mapping to the same segment.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// HashKey maps a key to its 64-bit hash (FNV-1a). Inlined rather than
// hash/fnv because fnv.New64a escapes through the hash.Hash64 interface —
// one heap allocation per lookup on the hot path. A parity test pins the
// inline loop to hash/fnv's output.
func HashKey(key []byte) uint64 {
	h := fnvOffset64
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// SegmentOf maps a key hash onto one of n segments.
func SegmentOf(hash uint64, n int) uint32 { return uint32(hash % uint64(n)) }
