package core

import (
	"fmt"
	"math/rand"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

// fillAndChurn writes nKeys objects then overwrites them rounds times,
// creating garbage.
func fillAndChurn(t *testing.T, p *sim.Proc, s *Store, nKeys, rounds, valLen int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		for i := 0; i < nKeys; i++ {
			key := []byte(fmt.Sprintf("key-%05d", i))
			val := []byte(fmt.Sprintf("v%d-%0*d", r, valLen-8, i))
			if _, err := s.Put(p, key, val); err != nil {
				t.Errorf("put r=%d i=%d: %v", r, i, err)
				return
			}
		}
	}
}

func TestValueCompactionReclaims(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		fillAndChurn(t, p, s, 100, 3, 64)
		garbageBefore := s.ValGarbage()
		if garbageBefore == 0 {
			t.Error("no garbage after churn")
			return
		}
		var total int64
		for i := 0; i < 20; i++ {
			n, err := s.CompactValueLog(p)
			if err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			if n == 0 {
				break
			}
			total += n
		}
		if total == 0 {
			t.Error("compaction reclaimed nothing")
		}
		// All data must survive.
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("key-%05d", i))
			got, _, err := s.Get(p, key)
			if err != nil {
				t.Errorf("get after compaction: %v", err)
				return
			}
			want := fmt.Sprintf("v2-%056d", i)
			if string(got) != want {
				t.Errorf("key %d: got %q", i, got)
				return
			}
		}
	})
}

func TestKeyCompactionReclaimsAndPrunesTombstones(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		fillAndChurn(t, p, s, 120, 2, 32)
		// Delete a third of the keys.
		for i := 0; i < 120; i += 3 {
			if _, err := s.Del(p, []byte(fmt.Sprintf("key-%05d", i))); err != nil {
				t.Errorf("del: %v", err)
				return
			}
		}
		var total int64
		for i := 0; i < 30; i++ {
			n, err := s.CompactKeyLog(p)
			if err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			if n == 0 {
				break
			}
			total += n
		}
		if total == 0 {
			t.Error("key compaction reclaimed nothing")
		}
		// Deleted keys stay deleted; others survive.
		for i := 0; i < 120; i++ {
			key := []byte(fmt.Sprintf("key-%05d", i))
			_, _, err := s.Get(p, key)
			if i%3 == 0 && err != ErrNotFound {
				t.Errorf("deleted key %d: %v", i, err)
				return
			}
			if i%3 != 0 && err != nil {
				t.Errorf("live key %d: %v", i, err)
				return
			}
		}
	})
}

func TestCompactionSustainsChurnInTightLog(t *testing.T) {
	// A log sized well below total write volume must survive indefinitely
	// when the caller compacts on demand — the circular-log contract.
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 8<<20)
	s := NewStore(Config{
		Env: k, Device: dev, NumSegments: 32,
		KeyLogBytes: 256 << 10, ValLogBytes: 256 << 10,
		CompactChunk: 64 << 10,
	})
	runStore(k, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(3))
		model := map[string]string{}
		for i := 0; i < 4000; i++ {
			key := fmt.Sprintf("key-%03d", rng.Intn(150))
			val := fmt.Sprintf("value-%06d-%032d", i, rng.Int63())
			if _, err := s.Put(p, []byte(key), []byte(val)); err != nil {
				t.Errorf("put %d: %v (val log used %d/%d, key log %d/%d)",
					i, err, s.ValLog().Used(), s.ValLog().Size(), s.KeyLog().Used(), s.KeyLog().Size())
				return
			}
			model[key] = val
			if s.NeedsValueCompaction() {
				if _, err := s.CompactValueLog(p); err != nil {
					t.Errorf("vcompact: %v", err)
					return
				}
			}
			if s.NeedsKeyCompaction() {
				if _, err := s.CompactKeyLog(p); err != nil {
					t.Errorf("kcompact: %v", err)
					return
				}
			}
		}
		for key, want := range model {
			got, _, err := s.Get(p, []byte(key))
			if err != nil || string(got) != want {
				t.Errorf("final get %q: %q, %v", key, got, err)
				return
			}
		}
	})
	if s.Stats().ValCompactions == 0 || s.Stats().KeyCompactions == 0 {
		t.Fatalf("compactions never ran: %+v", s.Stats())
	}
}

func TestCompactionSkipsLockedSegment(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		fillAndChurn(t, p, s, 50, 2, 32)
		// Lock one segment by hand; key compaction must skip it and stop
		// the head there if it is live within the chunk.
		s.segs.Lock(p, 5)
		if _, err := s.CompactKeyLog(p); err != nil {
			t.Errorf("compact with locked segment: %v", err)
		}
		s.segs.Unlock(5)
		// A later round finishes the job.
		for i := 0; i < 20; i++ {
			if n, _ := s.CompactKeyLog(p); n == 0 {
				break
			}
		}
	})
}

func TestSubcompactionParallelismSpeedsCompaction(t *testing.T) {
	// With a latency device, S=8 sub-compactions must finish a round
	// materially faster than S=1 (Figure 13a).
	measure := func(subs int) sim.Time {
		k := sim.New()
		defer k.Close()
		spec := flashsim.SamsungDCT983(64 << 20)
		spec.Jitter = 0
		dev := flashsim.NewSSD(k, spec)
		s := NewStore(Config{
			Env: k, Device: dev, NumSegments: 128,
			KeyLogBytes: 8 << 20, ValLogBytes: 16 << 20,
			SubCompactions: subs, CompactChunk: 128 << 10,
		})
		var dur sim.Time
		runStore(k, func(p *sim.Proc) {
			for r := 0; r < 2; r++ {
				for i := 0; i < 400; i++ {
					key := []byte(fmt.Sprintf("key-%05d", i))
					if _, err := s.Put(p, key, make([]byte, 128)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
			t0 := p.Now()
			if _, err := s.CompactValueLog(p); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			dur = p.Now() - t0
		})
		return dur
	}
	serial, parallel := measure(1), measure(8)
	if parallel >= serial {
		t.Fatalf("S=8 (%v) not faster than S=1 (%v)", parallel, serial)
	}
	if float64(serial)/float64(parallel) < 1.5 {
		t.Fatalf("speedup only %.2fx (serial %v, parallel %v)",
			float64(serial)/float64(parallel), serial, parallel)
	}
}

func TestPrefetchAvoidsHeadRead(t *testing.T) {
	run := func(prefetch bool) int64 {
		k := sim.New()
		defer k.Close()
		dev := flashsim.NewMemDevice(k, 8<<20)
		s := NewStore(Config{
			Env: k, Device: dev, NumSegments: 32,
			KeyLogBytes: 1 << 20, ValLogBytes: 2 << 20,
			Prefetch: prefetch, CompactChunk: 32 << 10,
		})
		runStore(k, func(p *sim.Proc) {
			// Interleave churn and compaction so every round has fresh
			// garbage and the previous round's prefetch gets consumed.
			for i := 0; i < 8; i++ {
				fillAndChurn(t, p, s, 200, 2, 64)
				s.CompactValueLog(p)
			}
		})
		return s.Stats().PrefetchHits
	}
	if hits := run(true); hits == 0 {
		t.Fatal("prefetch enabled but no hits")
	}
	if hits := run(false); hits != 0 {
		t.Fatalf("prefetch disabled but %d hits", hits)
	}
}

func TestCompactionPropertyModelPreserved(t *testing.T) {
	// Property: arbitrary op sequences interleaved with compactions always
	// preserve the model map.
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		k := sim.New()
		s := newTestStore(k)
		rng := rand.New(rand.NewSource(seed))
		model := map[string]string{}
		ok := true
		runStore(k, func(p *sim.Proc) {
			for i := 0; i < 600 && ok; i++ {
				key := fmt.Sprintf("k%03d", rng.Intn(120))
				switch rng.Intn(12) {
				case 0:
					if _, err := s.CompactValueLog(p); err != nil {
						t.Errorf("seed %d vcompact: %v", seed, err)
						ok = false
					}
				case 1:
					if _, err := s.CompactKeyLog(p); err != nil {
						t.Errorf("seed %d kcompact: %v", seed, err)
						ok = false
					}
				case 2, 3:
					s.Del(p, []byte(key))
					delete(model, key)
				default:
					val := fmt.Sprintf("v%d.%d", i, rng.Int31())
					if _, err := s.Put(p, []byte(key), []byte(val)); err != nil {
						t.Errorf("seed %d put: %v", seed, err)
						ok = false
					} else {
						model[key] = val
					}
				}
			}
			for key, want := range model {
				got, _, err := s.Get(p, []byte(key))
				if err != nil || string(got) != want {
					t.Errorf("seed %d: %q = %q, %v; want %q", seed, key, got, err, want)
					ok = false
					return
				}
			}
		})
		k.Close()
	}
}
