package core

import (
	"fmt"
	"math/rand"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

// storeOn builds a store with fixed geometry on the given device, so a
// second instance can be pointed at the same bytes for recovery.
func storeOn(k sim.Runner, dev flashsim.Device) *Store {
	return NewStore(Config{
		Env: k, Device: dev, DevID: 0, NumSegments: 32,
		KeyLogBytes: 512 << 10, ValLogBytes: 1 << 20, SwapLogBytes: 128 << 10,
	})
}

func TestRecoverAfterFlush(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s1 := storeOn(k, dev)
	model := map[string]string{}
	runStore(k, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("key-%03d", rng.Intn(80))
			val := fmt.Sprintf("val-%d", i)
			if _, err := s1.Put(p, []byte(key), []byte(val)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			model[key] = val
		}
		for i := 0; i < 80; i += 5 {
			key := fmt.Sprintf("key-%03d", i)
			if _, ok := model[key]; ok {
				s1.Del(p, []byte(key))
				delete(model, key)
			}
		}
		if err := s1.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
	})

	// "Reboot": fresh store object over the same device bytes.
	s2 := storeOn(k, dev)
	runStore(k, func(p *sim.Proc) {
		n, err := s2.Recover(p)
		if err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if n == 0 {
			t.Error("recovered no segments")
			return
		}
		for key, want := range model {
			got, _, err := s2.Get(p, []byte(key))
			if err != nil || string(got) != want {
				t.Errorf("get %q = %q, %v; want %q", key, got, err, want)
				return
			}
		}
		// Deleted keys stay deleted.
		if _, _, err := s2.Get(p, []byte("key-000")); err != ErrNotFound {
			t.Errorf("deleted key resurrected: %v", err)
		}
	})
	if s2.Objects() != int64(len(model)) {
		t.Fatalf("objects = %d, want %d", s2.Objects(), len(model))
	}
}

func TestRecoverUnflushedAppends(t *testing.T) {
	// Writes after the last superblock must be recovered by the forward
	// scan (Seq-ordered) past the persisted tail.
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s1 := storeOn(k, dev)
	runStore(k, func(p *sim.Proc) {
		s1.Put(p, []byte("old"), []byte("old-val"))
		s1.Flush(p)
		// These postdate the superblock.
		s1.Put(p, []byte("new1"), []byte("nv1"))
		s1.Put(p, []byte("new2"), []byte("nv2"))
		s1.Put(p, []byte("old"), []byte("old-val2"))
	})
	s2 := storeOn(k, dev)
	runStore(k, func(p *sim.Proc) {
		if _, err := s2.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		for key, want := range map[string]string{"old": "old-val2", "new1": "nv1", "new2": "nv2"} {
			got, _, err := s2.Get(p, []byte(key))
			if err != nil || string(got) != want {
				t.Errorf("get %q = %q, %v; want %q", key, got, err, want)
			}
		}
	})
}

func TestRecoverFreshRegion(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s := storeOn(k, dev)
	runStore(k, func(p *sim.Proc) {
		n, err := s.Recover(p)
		if err != nil || n != 0 {
			t.Errorf("fresh recover = %d, %v", n, err)
		}
		// Store must be usable afterwards.
		if _, err := s.Put(p, []byte("k"), []byte("v")); err != nil {
			t.Errorf("put after fresh recover: %v", err)
		}
	})
}

func TestRecoverAfterCompaction(t *testing.T) {
	// Compaction moves heads and rewrites arrays; recovery from the
	// post-compaction superblock must still see everything.
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s1 := storeOn(k, dev)
	model := map[string]string{}
	runStore(k, func(p *sim.Proc) {
		for r := 0; r < 4; r++ {
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("key-%03d", i)
				val := fmt.Sprintf("val-%d-%d", r, i)
				s1.Put(p, []byte(key), []byte(val))
				model[key] = val
			}
		}
		for i := 0; i < 10; i++ {
			s1.CompactValueLog(p)
			s1.CompactKeyLog(p)
		}
	})
	s2 := storeOn(k, dev)
	runStore(k, func(p *sim.Proc) {
		if _, err := s2.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		for key, want := range model {
			got, _, err := s2.Get(p, []byte(key))
			if err != nil || string(got) != want {
				t.Errorf("get %q = %q, %v; want %q", key, got, err, want)
				return
			}
		}
	})
}

func TestRecoverAfterFailedAppends(t *testing.T) {
	// A device write that errors mid-Put must not poison the key log: the
	// failed append's reservation rolls back, later acked Puts land
	// contiguously, and recovery replays them all. The chaos soak first
	// caught the un-rolled-back variant losing every post-failure write.
	k := sim.New()
	defer k.Close()
	fi := flashsim.NewFaultInjector(k, flashsim.NewMemDevice(k, 4<<20), 3)
	s1 := storeOn(k, fi)
	model := map[string]string{}
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			key, val := fmt.Sprintf("pre-%02d", i), fmt.Sprintf("v%d", i)
			if _, err := s1.Put(p, []byte(key), []byte(val)); err != nil {
				t.Errorf("put %s: %v", key, err)
				return
			}
			model[key] = val
		}
		if err := s1.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		// Kill the device, fail a batch of Puts, then revive it.
		fi.FailWritesOnly = true
		fi.FailAfter = 1
		failed := 0
		for i := 0; i < 10; i++ {
			if _, err := s1.Put(p, []byte(fmt.Sprintf("torn-%02d", i)), []byte("x")); err != nil {
				failed++
			}
		}
		if failed == 0 {
			t.Error("no Put failed with a dead device")
			return
		}
		fi.FailAfter = 0
		fi.FailWritesOnly = false
		// Acked writes after the failures must survive the crash below even
		// though no further superblock is written.
		for i := 0; i < 20; i++ {
			key, val := fmt.Sprintf("post-%02d", i), fmt.Sprintf("w%d", i)
			if _, err := s1.Put(p, []byte(key), []byte(val)); err != nil {
				t.Errorf("put %s after heal: %v", key, err)
				return
			}
			model[key] = val
		}
	})

	s2 := storeOn(k, fi)
	runStore(k, func(p *sim.Proc) {
		if _, err := s2.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		for key, want := range model {
			got, _, err := s2.Get(p, []byte(key))
			if err != nil || string(got) != want {
				t.Errorf("get %q = %q, %v; want %q", key, got, err, want)
			}
		}
	})
}

func TestRecoveredStoreAcceptsWrites(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s1 := storeOn(k, dev)
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			s1.Put(p, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		}
		s1.Flush(p)
	})
	s2 := storeOn(k, dev)
	runStore(k, func(p *sim.Proc) {
		s2.Recover(p)
		// Continue writing and compacting on the recovered instance.
		for i := 0; i < 200; i++ {
			if _, err := s2.Put(p, []byte(fmt.Sprintf("k%d", i%50)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		if _, err := s2.CompactValueLog(p); err != nil {
			t.Errorf("compact: %v", err)
		}
		got, _, err := s2.Get(p, []byte("k10"))
		if err != nil || string(got) != "v160" {
			t.Errorf("get = %q, %v", got, err)
		}
	})
}
