package core

import (
	"fmt"

	"leed/internal/runtime"
)

// Intra-JBOF data swapping (§3.6). When this store's home SSD is
// over-subscribed, the engine redirects PUT values into a co-located
// store's swap region via PutSwapped. The key-log item records the helper's
// SSD identifier, so subsequent GETs read the value from the helper.
// Swapped values are merged back to the home value log during future
// compactions, after which the helper reclaims its swap space.

// AppendSwap appends a foreign value entry to this store's swap region on
// behalf of an overloaded co-located store. It returns the entry's logical
// offset in the swap log and the write-completion event.
func (s *Store) AppendSwap(entry []byte) (int64, runtime.Event, error) {
	if s.swapLog == nil {
		return 0, nil, fmt.Errorf("core: store %d has no swap region", s.cfg.DevID)
	}
	off, ev, err := s.swapLog.Append(entry)
	if err != nil {
		return 0, nil, err
	}
	s.swapMeta[off] = int64(len(entry))
	return off, ev, nil
}

// SwapMerged marks the swap-log entry at off as merged back (or dead) and
// advances the swap head over the contiguous merged prefix.
func (s *Store) SwapMerged(off int64) {
	if s.swapLog == nil {
		return
	}
	s.swapMerged[off] = true
	for {
		h := s.swapLog.Head()
		size, ok := s.swapMeta[h]
		if !ok || !s.swapMerged[h] {
			return
		}
		delete(s.swapMeta, h)
		delete(s.swapMerged, h)
		s.swapLog.ReleaseTo(h + size)
	}
}

// releaseSwapRef marks a no-longer-referenced swapped value (overwritten or
// deleted) so the helper can reclaim its space.
func (s *Store) releaseSwapRef(ssdID uint8, off int64) {
	if peer, ok := s.peers[ssdID]; ok && peer != s {
		peer.SwapMerged(off)
	}
}

// Mergeback relocates swapped-out values back into the home value log, up
// to maxSegs segments per call. It returns the number of values merged.
func (s *Store) Mergeback(p runtime.Task, maxSegs int) (int, error) {
	if len(s.pendingSwaps) == 0 {
		return 0, nil
	}
	merged := 0
	for _, seg := range s.PendingSwapSegments() {
		if maxSegs <= 0 {
			break
		}
		maxSegs--
		n, err := s.mergebackSegment(p, seg)
		merged += n
		if err != nil {
			return merged, err
		}
	}
	return merged, nil
}

func (s *Store) mergebackSegment(p runtime.Task, seg uint32) (int, error) {
	var st OpStats
	s.segs.Lock(p, seg)
	defer s.segs.Unlock(seg)

	buckets, found, err := s.loadSegment(p, &st, seg)
	if err != nil {
		return 0, err
	}
	if !found {
		delete(s.pendingSwaps, seg)
		return 0, nil
	}
	merged := 0
	for _, b := range buckets {
		for i := range b.Items {
			it := &b.Items[i]
			if it.Deleted() || it.SSDID == s.cfg.DevID {
				continue
			}
			peer, found := s.peers[it.SSDID]
			if !found || peer.swapLog == nil {
				return merged, fmt.Errorf("%w: swap peer %d missing", ErrCorrupt, it.SSDID)
			}
			entry := make([]byte, ValueEntrySize(len(it.Key), int(it.ValLen)))
			ev, rerr := peer.swapLog.ReadAsync(it.ValOff, entry)
			if rerr != nil {
				return merged, rerr
			}
			if err := s.ssdWait(p, &st, ev); err != nil {
				return merged, err
			}
			newOff, aev, aerr := s.valLog.Append(entry)
			if aerr != nil {
				return merged, aerr // out of space: retry after compaction
			}
			if err := s.ssdWait(p, &st, aev); err != nil {
				return merged, err
			}
			oldOff := it.ValOff
			it.ValOff = newOff
			it.SSDID = s.cfg.DevID
			peer.SwapMerged(oldOff)
			merged++
			s.stats.MergedSwaps++
			s.cpu(p, &st, s.cfg.Costs.CompactItem)
		}
	}
	// Rewrite the array at home when values moved or the array itself is
	// still living in a peer's swap region.
	_, remote := s.segs.Location(seg)
	if merged > 0 || remote {
		if err := s.writeSegment(p, &st, seg, buckets, true, nil); err != nil {
			return merged, err
		}
		if remote {
			merged++
			s.stats.MergedSwaps++
		}
	}
	delete(s.pendingSwaps, seg)
	return merged, nil
}

// SwapBacklog returns the number of segments awaiting swap merge-back.
func (s *Store) SwapBacklog() int { return len(s.pendingSwaps) }
