package core

import (
	"fmt"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

func TestRangeVisitsAllLiveObjects(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		want := map[string]string{}
		for i := 0; i < 80; i++ {
			key := fmt.Sprintf("key-%03d", i)
			val := fmt.Sprintf("val-%d", i)
			s.Put(p, []byte(key), []byte(val))
			want[key] = val
		}
		// Delete some; Range must skip them.
		for i := 0; i < 80; i += 4 {
			key := fmt.Sprintf("key-%03d", i)
			s.Del(p, []byte(key))
			delete(want, key)
		}
		got := map[string]string{}
		if err := s.Range(p, func(key, val []byte) bool {
			got[string(key)] = string(val)
			return true
		}); err != nil {
			t.Errorf("range: %v", err)
			return
		}
		if len(got) != len(want) {
			t.Errorf("range visited %d objects, want %d", len(got), len(want))
			return
		}
		for key, v := range want {
			if got[key] != v {
				t.Errorf("range %q = %q, want %q", key, got[key], v)
				return
			}
		}
	})
}

func TestRangeEarlyStop(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			s.Put(p, []byte(fmt.Sprintf("k%02d", i)), []byte("v"))
		}
		seen := 0
		s.Range(p, func(key, val []byte) bool {
			seen++
			return seen < 10
		})
		if seen != 10 {
			t.Errorf("early stop visited %d", seen)
		}
	})
}

func TestRangeIncludesSwappedValues(t *testing.T) {
	k := sim.New()
	defer k.Close()
	home, helper := newPeerStores(k)
	runStore(k, func(p *sim.Proc) {
		home.Put(p, []byte("local"), []byte("lv"))
		home.PutSwapped(p, []byte("swapped"), []byte("sv"), helper)
		got := map[string]string{}
		if err := home.Range(p, func(key, val []byte) bool {
			got[string(key)] = string(val)
			return true
		}); err != nil {
			t.Errorf("range: %v", err)
			return
		}
		if got["local"] != "lv" || got["swapped"] != "sv" {
			t.Errorf("range = %v", got)
		}
	})
}

func TestRangeAllowsWritesFromCallback(t *testing.T) {
	// fn runs unlocked, so COPY-style read-then-put patterns must not
	// deadlock even when the put hits the segment being iterated from.
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			s.Put(p, []byte(fmt.Sprintf("k%02d", i)), []byte("v"))
		}
		if err := s.Range(p, func(key, val []byte) bool {
			_, err := s.Put(p, append([]byte("copy-"), key...), val)
			return err == nil
		}); err != nil {
			t.Errorf("range: %v", err)
			return
		}
		if v, _, err := s.Get(p, []byte("copy-k05")); err != nil || string(v) != "v" {
			t.Errorf("copied key: %q, %v", v, err)
		}
	})
}

func TestOpStatsTotalAndAdd(t *testing.T) {
	a := OpStats{SSD: 100, CPU: 10, Reads: 2, Writes: 1}
	b := OpStats{SSD: 50, CPU: 5, Reads: 1, Writes: 2}
	if a.Total() != 110 {
		t.Fatalf("Total = %v", a.Total())
	}
	a.Add(b)
	if a.SSD != 150 || a.CPU != 15 || a.Reads != 3 || a.Writes != 3 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestBucketFind(t *testing.T) {
	b := &Bucket{Items: []Item{
		{Key: []byte("aa"), ValLen: 1},
		{Key: []byte("bb"), ValLen: 2},
	}}
	if b.Find([]byte("bb")) != 1 || b.Find([]byte("aa")) != 0 {
		t.Fatal("Find wrong index")
	}
	if b.Find([]byte("zz")) != -1 {
		t.Fatal("Find on missing key")
	}
}

func TestCircLogStatsAndAccessors(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 1<<20)
	l := NewCircLog(k, dev, 0, 4096)
	k.Go("t", func(p *sim.Proc) {
		_, ev, _ := l.Append([]byte("abc"))
		p.Wait(ev)
		l.Read(p, 0, make([]byte, 3))
	})
	k.Run()
	a, r := l.Stats()
	if a != 1 || r != 1 {
		t.Fatalf("stats = %d, %d", a, r)
	}
	if l.Size() != 4096 {
		t.Fatalf("size = %d", l.Size())
	}
}

func TestSegTblAccessors(t *testing.T) {
	tb := NewSegTbl(8)
	if tb.NumSegments() != 8 {
		t.Fatal("NumSegments")
	}
	if tb.Locked(3) {
		t.Fatal("fresh segment locked")
	}
	if !tb.TryLock(3) || !tb.Locked(3) {
		t.Fatal("TryLock")
	}
	tb.Unlock(3)
	if tb.Locked(3) {
		t.Fatal("still locked")
	}
}

func TestStoreAccessors(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	if s.Config().NumSegments != 64 {
		t.Fatal("Config")
	}
	if s.KeyLog() == nil || s.ValLog() == nil || s.SwapLog() == nil {
		t.Fatal("log accessors")
	}
	g := PlanPartition(1<<30, 16, 256, PlanOpts{})
	cfg := StoreConfigFor(g, Config{BlockSize: 512})
	if cfg.NumSegments != g.NumSegments || cfg.ValLogBytes != g.ValLogBytes {
		t.Fatal("StoreConfigFor")
	}
}

func TestSegTblReaderWriterSemantics(t *testing.T) {
	k := sim.New()
	defer k.Close()
	tb := NewSegTbl(4)
	var trace []string
	k.Go("r1", func(p *sim.Proc) {
		tb.RLock(p, 0)
		trace = append(trace, "r1+")
		p.Sleep(20)
		trace = append(trace, "r1-")
		tb.RUnlock(0)
	})
	k.Go("r2", func(p *sim.Proc) {
		tb.RLock(p, 0)
		trace = append(trace, "r2+")
		p.Sleep(20)
		trace = append(trace, "r2-")
		tb.RUnlock(0)
	})
	k.After(5, func() {
		k.Go("w", func(p *sim.Proc) {
			tb.Lock(p, 0)
			trace = append(trace, "w+")
			tb.Unlock(0)
		})
	})
	k.Run()
	// Readers overlap (both enter before either exits); writer waits for
	// both.
	want := []string{"r1+", "r2+", "r1-", "r2-", "w+"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSegTblWriterBlocksNewReaders(t *testing.T) {
	// FIFO fairness: a queued writer must not be starved by later readers.
	k := sim.New()
	defer k.Close()
	tb := NewSegTbl(1)
	var trace []string
	k.Go("r1", func(p *sim.Proc) {
		tb.RLock(p, 0)
		p.Sleep(20)
		tb.RUnlock(0)
		trace = append(trace, "r1")
	})
	k.After(5, func() {
		k.Go("w", func(p *sim.Proc) {
			tb.Lock(p, 0)
			trace = append(trace, "w")
			p.Sleep(20)
			tb.Unlock(0)
		})
	})
	k.After(10, func() {
		k.Go("r2", func(p *sim.Proc) {
			tb.RLock(p, 0)
			trace = append(trace, "r2")
			tb.RUnlock(0)
		})
	})
	k.Run()
	want := []string{"r1", "w", "r2"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestStoreWith4KBlocks(t *testing.T) {
	// §3.2.2 allows 512B or 4KB bucket blocks; the store must work with
	// either. 4KB buckets hold many more items per segment.
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 16<<20)
	s := NewStore(Config{
		Env: k, Device: dev, NumSegments: 8, BlockSize: 4096,
		KeyLogBytes: 4 << 20, ValLogBytes: 8 << 20,
	})
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 600; i++ {
			key := []byte(fmt.Sprintf("key-%05d", i))
			if _, err := s.Put(p, key, []byte("v")); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 600; i++ {
			key := []byte(fmt.Sprintf("key-%05d", i))
			if _, _, err := s.Get(p, key); err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
		}
		// Churn + compaction still work at this block size.
		for i := 0; i < 600; i++ {
			s.Put(p, []byte(fmt.Sprintf("key-%05d", i)), []byte("v2"))
		}
		for s.ValGarbage() > 0 {
			if n, err := s.CompactValueLog(p); err != nil || n == 0 {
				break
			}
		}
		if v, _, err := s.Get(p, []byte("key-00042")); err != nil || string(v) != "v2" {
			t.Errorf("after churn: %q, %v", v, err)
		}
	})
	if s.Objects() != 600 {
		t.Fatalf("objects = %d", s.Objects())
	}
}
