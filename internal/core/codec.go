package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-flash layout (§3.2.2–3.2.3).
//
// A bucket occupies exactly one SSD block. A segment is an array of
// chainLen buckets written contiguously to the key log, so fetching a
// segment is a single NVMe access. Key items carry the value length, the
// value-log offset, and the SSD identifier used by the intra-JBOF data
// swapping mechanism (§3.6).

const (
	bucketMagic = 0x1EED
	valueMagic  = 0x1EE5

	bucketHdrSize = 40
	itemHdrSize   = 14 // keyLen u8 | ssdID u8 | valLen u32 | valOff u64
	valueHdrSize  = 12 // magic u16 | keyLen u8 | flags u8 | valLen u32 | crc u32

	// MaxKeyLen is the largest supported key, bounded by the 1-byte
	// on-flash key length field.
	MaxKeyLen = 255
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// zeroCRCField stands in for a bucket header's zeroed CRC field when
// verifying in place; package-level so taking a slice of it never escapes
// a stack temporary into the per-GET path.
var zeroCRCField [4]byte

// Item is one key entry inside a bucket. ValLen == 0 marks a deletion
// (§3.3: DEL sets the value length to zero as the deletion marker).
type Item struct {
	Key    []byte
	ValLen uint32
	ValOff int64
	SSDID  uint8 // which co-located SSD holds the value (data swapping, §3.6)
}

// Size returns the item's marshaled size.
func (it *Item) Size() int { return itemHdrSize + len(it.Key) }

// Deleted reports whether the item is a deletion marker.
func (it *Item) Deleted() bool { return it.ValLen == 0 }

// Bucket is one block of a segment's chained-bucket array.
type Bucket struct {
	SegID       uint32
	ChainLen    uint8
	ChainPos    uint8
	ValHeadHint int64 // value-log head at write time (recovery, §3.2.3)
	ValTailHint int64 // value-log tail at write time
	Seq         uint64
	Items       []Item
}

// itemsBytes returns the marshaled size of all items.
func (b *Bucket) itemsBytes() int {
	n := 0
	for i := range b.Items {
		n += b.Items[i].Size()
	}
	return n
}

// SpaceLeft returns the free item bytes remaining in a block of blockSize.
func (b *Bucket) SpaceLeft(blockSize int) int {
	return blockSize - bucketHdrSize - b.itemsBytes()
}

// Find returns the index of the item with the given key, or -1.
func (b *Bucket) Find(key []byte) int {
	for i := range b.Items {
		if string(b.Items[i].Key) == string(key) {
			return i
		}
	}
	return -1
}

// Marshal writes the bucket into dst, which must be exactly one block.
func (b *Bucket) Marshal(dst []byte) error {
	if len(b.Items) > 0xffff {
		return fmt.Errorf("%w: %d items", ErrCorrupt, len(b.Items))
	}
	need := bucketHdrSize + b.itemsBytes()
	if need > len(dst) {
		return fmt.Errorf("%w: bucket needs %d bytes, block is %d", ErrCorrupt, need, len(dst))
	}
	for i := range dst {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint16(dst[0:], bucketMagic)
	dst[2] = b.ChainLen
	dst[3] = b.ChainPos
	binary.LittleEndian.PutUint32(dst[4:], b.SegID)
	// crc at [8:12] filled last
	binary.LittleEndian.PutUint16(dst[12:], uint16(len(b.Items)))
	binary.LittleEndian.PutUint64(dst[16:], uint64(b.ValHeadHint))
	binary.LittleEndian.PutUint64(dst[24:], uint64(b.ValTailHint))
	binary.LittleEndian.PutUint64(dst[32:], b.Seq)
	o := bucketHdrSize
	for i := range b.Items {
		it := &b.Items[i]
		if len(it.Key) > MaxKeyLen {
			return ErrKeyTooLarge
		}
		dst[o] = uint8(len(it.Key))
		dst[o+1] = it.SSDID
		binary.LittleEndian.PutUint32(dst[o+2:], it.ValLen)
		binary.LittleEndian.PutUint64(dst[o+6:], uint64(it.ValOff))
		copy(dst[o+itemHdrSize:], it.Key)
		o += it.Size()
	}
	binary.LittleEndian.PutUint32(dst[8:], crc32.Checksum(dst, castagnoli))
	return nil
}

// UnmarshalBucket parses one block. The stored CRC is validated.
func UnmarshalBucket(src []byte) (*Bucket, error) {
	if len(src) < bucketHdrSize {
		return nil, fmt.Errorf("%w: short bucket block", ErrCorrupt)
	}
	if binary.LittleEndian.Uint16(src[0:]) != bucketMagic {
		return nil, fmt.Errorf("%w: bad bucket magic", ErrCorrupt)
	}
	stored := binary.LittleEndian.Uint32(src[8:])
	tmp := make([]byte, len(src))
	copy(tmp, src)
	binary.LittleEndian.PutUint32(tmp[8:], 0)
	if crc32.Checksum(tmp, castagnoli) != stored {
		return nil, fmt.Errorf("%w: bucket crc mismatch", ErrCorrupt)
	}
	b := &Bucket{
		ChainLen:    src[2],
		ChainPos:    src[3],
		SegID:       binary.LittleEndian.Uint32(src[4:]),
		ValHeadHint: int64(binary.LittleEndian.Uint64(src[16:])),
		ValTailHint: int64(binary.LittleEndian.Uint64(src[24:])),
		Seq:         binary.LittleEndian.Uint64(src[32:]),
	}
	n := int(binary.LittleEndian.Uint16(src[12:]))
	o := bucketHdrSize
	for i := 0; i < n; i++ {
		if o+itemHdrSize > len(src) {
			return nil, fmt.Errorf("%w: truncated item header", ErrCorrupt)
		}
		kl := int(src[o])
		if o+itemHdrSize+kl > len(src) {
			return nil, fmt.Errorf("%w: truncated item key", ErrCorrupt)
		}
		it := Item{
			SSDID:  src[o+1],
			ValLen: binary.LittleEndian.Uint32(src[o+2:]),
			ValOff: int64(binary.LittleEndian.Uint64(src[o+6:])),
			Key:    append([]byte(nil), src[o+itemHdrSize:o+itemHdrSize+kl]...),
		}
		b.Items = append(b.Items, it)
		o += it.Size()
	}
	return b, nil
}

// VerifyBucketBlock validates one serialized bucket block — magic and CRC —
// without copying it: the stored CRC was computed with its own field zeroed,
// so the check runs the CRC over the three spans around it instead of
// zeroing a temporary copy.
func VerifyBucketBlock(src []byte) error {
	if len(src) < bucketHdrSize {
		return fmt.Errorf("%w: short bucket block", ErrCorrupt)
	}
	if binary.LittleEndian.Uint16(src[0:]) != bucketMagic {
		return fmt.Errorf("%w: bad bucket magic", ErrCorrupt)
	}
	crc := crc32.Update(0, castagnoli, src[:8])
	crc = crc32.Update(crc, castagnoli, zeroCRCField[:])
	crc = crc32.Update(crc, castagnoli, src[12:])
	if crc != binary.LittleEndian.Uint32(src[8:]) {
		return fmt.Errorf("%w: bucket crc mismatch", ErrCorrupt)
	}
	return nil
}

// RawItem is an item decoded in place from a serialized bucket block: the
// fields a GET needs, without copying the key out. The allocation-free read
// path scans blocks with ScanBucketBlock instead of materializing Buckets.
type RawItem struct {
	ValLen uint32
	ValOff int64
	SSDID  uint8
}

// Deleted reports whether the item is a deletion marker.
func (it *RawItem) Deleted() bool { return it.ValLen == 0 }

// ScanBucketBlock searches one serialized bucket block (call
// VerifyBucketBlock first) for key, walking the item layout in place.
// scanned reports how many items were inspected — the same count findItem
// charges — so callers bill identical CPU cycles to either path.
func ScanBucketBlock(src, key []byte) (it RawItem, scanned int, found bool, err error) {
	n := int(binary.LittleEndian.Uint16(src[12:]))
	o := bucketHdrSize
	for i := 0; i < n; i++ {
		if o+itemHdrSize > len(src) {
			return RawItem{}, scanned, false, fmt.Errorf("%w: truncated item header", ErrCorrupt)
		}
		kl := int(src[o])
		if o+itemHdrSize+kl > len(src) {
			return RawItem{}, scanned, false, fmt.Errorf("%w: truncated item key", ErrCorrupt)
		}
		scanned++
		if kl == len(key) && string(src[o+itemHdrSize:o+itemHdrSize+kl]) == string(key) {
			it = RawItem{
				SSDID:  src[o+1],
				ValLen: binary.LittleEndian.Uint32(src[o+2:]),
				ValOff: int64(binary.LittleEndian.Uint64(src[o+6:])),
			}
			return it, scanned, true, nil
		}
		o += itemHdrSize + kl
	}
	return RawItem{}, scanned, false, nil
}

// ProbeBucket cheaply checks whether a block looks like a valid bucket
// without the CRC copy; used by recovery scans.
func ProbeBucket(src []byte) bool {
	if len(src) < bucketHdrSize {
		return false
	}
	return binary.LittleEndian.Uint16(src[0:]) == bucketMagic
}

// ValueEntrySize returns the marshaled size of a value-log entry.
func ValueEntrySize(keyLen, valLen int) int { return valueHdrSize + keyLen + valLen }

// MarshalValueEntry encodes a value-log record: header (with a CRC over
// the payload), key, value. The key is stored alongside the value so
// value-log compaction can test liveness by looking the key up in the key
// log (§3.3.1); the CRC catches torn or stale reads, which matters most
// for entries living transiently in peer swap regions.
func MarshalValueEntry(dst, key, val []byte) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLarge
	}
	if len(dst) != ValueEntrySize(len(key), len(val)) {
		return fmt.Errorf("%w: value entry buffer size %d", ErrCorrupt, len(dst))
	}
	binary.LittleEndian.PutUint16(dst[0:], valueMagic)
	dst[2] = uint8(len(key))
	dst[3] = 0
	binary.LittleEndian.PutUint32(dst[4:], uint32(len(val)))
	copy(dst[valueHdrSize:], key)
	copy(dst[valueHdrSize+len(key):], val)
	binary.LittleEndian.PutUint32(dst[8:], crc32.Checksum(dst[valueHdrSize:], castagnoli))
	return nil
}

// ParseValueEntry decodes the entry at the start of src, verifying its
// CRC, and returns the key, value, and total entry size. The returned
// slices alias src.
func ParseValueEntry(src []byte) (key, val []byte, size int, err error) {
	if len(src) < valueHdrSize {
		return nil, nil, 0, fmt.Errorf("%w: short value entry", ErrCorrupt)
	}
	if binary.LittleEndian.Uint16(src[0:]) != valueMagic {
		return nil, nil, 0, fmt.Errorf("%w: bad value magic", ErrCorrupt)
	}
	kl := int(src[2])
	vl := int(binary.LittleEndian.Uint32(src[4:]))
	size = ValueEntrySize(kl, vl)
	if len(src) < size {
		return nil, nil, 0, fmt.Errorf("%w: truncated value entry (%d < %d)", ErrCorrupt, len(src), size)
	}
	if crc32.Checksum(src[valueHdrSize:size], castagnoli) != binary.LittleEndian.Uint32(src[8:]) {
		return nil, nil, 0, fmt.Errorf("%w: value entry crc mismatch", ErrCorrupt)
	}
	return src[valueHdrSize : valueHdrSize+kl], src[valueHdrSize+kl : size], size, nil
}
