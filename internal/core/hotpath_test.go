package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

// TestHashKeyMatchesFnv pins the inlined FNV-1a loop to hash/fnv's output:
// hashes are durably encoded in segment assignment, so the two must never
// diverge.
func TestHashKeyMatchesFnv(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := [][]byte{nil, {}, []byte("a"), []byte("key1"), bytes.Repeat([]byte{0xff}, 255)}
	for i := 0; i < 200; i++ {
		k := make([]byte, rng.Intn(64))
		rng.Read(k)
		keys = append(keys, k)
	}
	for _, k := range keys {
		h := fnv.New64a()
		h.Write(k)
		if want, got := h.Sum64(), HashKey(k); got != want {
			t.Fatalf("HashKey(%q) = %#x, hash/fnv says %#x", k, got, want)
		}
	}
}

// TestGetIntoMatchesGet drives both read paths over the same populated
// store — including deletes, overwrites, and misses — and demands identical
// values, errors, and cost accounting.
func TestGetIntoMatchesGet(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	rng := rand.New(rand.NewSource(7))
	runStore(k, func(p *sim.Proc) {
		vals := map[string][]byte{}
		for i := 0; i < 300; i++ {
			key := []byte(fmt.Sprintf("key-%d", rng.Intn(120)))
			val := make([]byte, 1+rng.Intn(200))
			rng.Read(val)
			if rng.Intn(6) == 0 {
				s.Del(p, key)
				delete(vals, string(key))
				continue
			}
			if _, err := s.Put(p, key, val); err != nil {
				t.Fatalf("put: %v", err)
			}
			vals[string(key)] = val
		}
		for i := 0; i < 140; i++ {
			key := []byte(fmt.Sprintf("key-%d", i))
			v1, st1, err1 := s.Get(p, key)
			v2, st2, err2 := s.GetInto(p, key, nil)
			if (err1 == nil) != (err2 == nil) || (err1 != nil && err1 != err2) {
				t.Fatalf("key %q: Get err %v, GetInto err %v", key, err1, err2)
			}
			if !bytes.Equal(v1, v2) {
				t.Fatalf("key %q: Get %q, GetInto %q", key, v1, v2)
			}
			if st1 != st2 {
				t.Fatalf("key %q: Get stats %+v, GetInto stats %+v", key, st1, st2)
			}
			if err1 == nil && !bytes.Equal(v1, vals[string(key)]) {
				t.Fatalf("key %q: wrong value", key)
			}
		}
		// Appending into a caller buffer extends rather than clobbers.
		key := []byte("key-0")
		if _, ok := vals["key-0"]; !ok {
			if _, err := s.Put(p, key, []byte("zz")); err != nil {
				t.Fatalf("put: %v", err)
			}
			vals["key-0"] = []byte("zz")
		}
		dst := append([]byte(nil), "prefix:"...)
		out, _, err := s.GetInto(p, key, dst)
		if err != nil {
			t.Fatalf("GetInto with dst: %v", err)
		}
		if want := "prefix:" + string(vals["key-0"]); string(out) != want {
			t.Fatalf("GetInto append = %q, want %q", out, want)
		}
	})
}

// TestGetIntoSyncReads exercises the SyncReader fast path: with inline
// reads enabled on the MemDevice, GetInto must return the same data and
// count the same device reads, without touching the event machinery.
func TestGetIntoSyncReads(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s := NewStore(Config{
		Env: k, Device: dev, DevID: 0, NumSegments: 16,
		KeyLogBytes: 1 << 20, ValLogBytes: 2 << 20, SwapLogBytes: 256 << 10,
	})
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("k%d", i))
			if _, err := s.Put(p, key, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		dev.SetSyncReads(true)
		readsBefore := dev.Stats().Reads
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("k%d", i))
			got, st, err := s.GetInto(p, key, nil)
			if err != nil {
				t.Fatalf("get %q: %v", key, err)
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 32)) {
				t.Fatalf("get %q: wrong value", key)
			}
			if st.Reads != 2 {
				t.Fatalf("get %q: %d reads, want 2 (segment + value)", key, st.Reads)
			}
		}
		if got := dev.Stats().Reads - readsBefore; got != 80 {
			t.Fatalf("device reads = %d, want 80", got)
		}
		dev.SetSyncReads(false)
		if _, _, err := s.GetInto(p, []byte("k0"), nil); err != nil {
			t.Fatalf("async fallback: %v", err)
		}
	})
}

// TestVerifyBucketBlockMatchesUnmarshal checks the copy-free CRC
// verification agrees with UnmarshalBucket on both valid and corrupt
// blocks.
func TestVerifyBucketBlockMatchesUnmarshal(t *testing.T) {
	b := &Bucket{SegID: 3, ChainLen: 1, Seq: 9}
	for i := 0; i < 5; i++ {
		b.Items = append(b.Items, Item{
			Key: []byte(fmt.Sprintf("key-%d", i)), ValLen: 10, ValOff: int64(i * 64), SSDID: 1,
		})
	}
	blk := make([]byte, 512)
	if err := b.Marshal(blk); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := VerifyBucketBlock(blk); err != nil {
		t.Fatalf("verify valid block: %v", err)
	}
	it, scanned, found, err := ScanBucketBlock(blk, []byte("key-3"))
	if err != nil || !found || scanned != 4 || it.ValOff != 3*64 {
		t.Fatalf("scan: it=%+v scanned=%d found=%v err=%v", it, scanned, found, err)
	}
	if _, scanned, found, _ := ScanBucketBlock(blk, []byte("nope")); found || scanned != 5 {
		t.Fatalf("scan miss: scanned=%d found=%v", scanned, found)
	}
	for _, flip := range []int{0, 9, 50, 200} {
		bad := append([]byte(nil), blk...)
		bad[flip] ^= 0x40
		vErr := VerifyBucketBlock(bad)
		_, uErr := UnmarshalBucket(bad)
		if (vErr == nil) != (uErr == nil) {
			t.Fatalf("flip byte %d: VerifyBucketBlock %v, UnmarshalBucket %v", flip, vErr, uErr)
		}
	}
}
