package core

import (
	"bytes"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

func newTestLog(k sim.Runner, size int64) *CircLog {
	dev := flashsim.NewMemDevice(k, size+1024)
	return NewCircLog(k, dev, 512, size)
}

func TestCircLogAppendRead(t *testing.T) {
	k := sim.New()
	defer k.Close()
	l := newTestLog(k, 4096)
	k.Go("io", func(p *sim.Proc) {
		off1, ev1, err := l.Append([]byte("hello"))
		if err != nil {
			t.Errorf("append: %v", err)
			return
		}
		off2, ev2, _ := l.Append([]byte("world"))
		p.Wait(ev1)
		p.Wait(ev2)
		if off1 != 0 || off2 != 5 {
			t.Errorf("offsets = %d, %d", off1, off2)
		}
		buf := make([]byte, 10)
		if err := l.Read(p, 0, buf); err != nil {
			t.Errorf("read: %v", err)
		}
		if string(buf) != "helloworld" {
			t.Errorf("read %q", buf)
		}
	})
	k.Run()
	if l.Used() != 10 || l.Free() != 4086 {
		t.Fatalf("used/free = %d/%d", l.Used(), l.Free())
	}
}

func TestCircLogWrapAround(t *testing.T) {
	k := sim.New()
	defer k.Close()
	l := newTestLog(k, 100)
	k.Go("io", func(p *sim.Proc) {
		// Fill 90 bytes, release 80, then append 60 (wraps at physical 100).
		_, ev, err := l.Append(bytes.Repeat([]byte{1}, 90))
		if err != nil {
			t.Errorf("append: %v", err)
			return
		}
		p.Wait(ev)
		l.ReleaseTo(80)
		data := make([]byte, 60)
		for i := range data {
			data[i] = byte(i)
		}
		off, ev2, err := l.Append(data)
		if err != nil {
			t.Errorf("wrap append: %v", err)
			return
		}
		p.Wait(ev2)
		if off != 90 {
			t.Errorf("off = %d", off)
		}
		got := make([]byte, 60)
		if err := l.Read(p, 90, got); err != nil {
			t.Errorf("wrap read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("wrap data corrupted: %v", got[:10])
		}
	})
	k.Run()
}

func TestCircLogFull(t *testing.T) {
	k := sim.New()
	defer k.Close()
	l := newTestLog(k, 100)
	k.Go("io", func(p *sim.Proc) {
		_, ev, err := l.Append(make([]byte, 100))
		if err != nil {
			t.Errorf("append: %v", err)
			return
		}
		p.Wait(ev)
		if _, _, err := l.Append([]byte{1}); err != ErrLogFull {
			t.Errorf("expected ErrLogFull, got %v", err)
		}
		l.ReleaseTo(1)
		if _, _, err := l.Append([]byte{1}); err != nil {
			t.Errorf("append after release: %v", err)
		}
	})
	k.Run()
}

func TestCircLogOversizedAppend(t *testing.T) {
	k := sim.New()
	defer k.Close()
	l := newTestLog(k, 100)
	if _, _, err := l.Append(make([]byte, 101)); err != ErrValueTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestCircLogReadOutsideLiveRegion(t *testing.T) {
	k := sim.New()
	defer k.Close()
	l := newTestLog(k, 100)
	k.Go("io", func(p *sim.Proc) {
		_, ev, _ := l.Append(make([]byte, 50))
		p.Wait(ev)
		l.ReleaseTo(10)
		if _, err := l.ReadAsync(5, make([]byte, 5)); err == nil {
			t.Error("read below head succeeded")
		}
		if _, err := l.ReadAsync(45, make([]byte, 10)); err == nil {
			t.Error("read past tail succeeded")
		}
		if _, err := l.ReadAsync(10, make([]byte, 40)); err != nil {
			t.Errorf("valid read failed: %v", err)
		}
	})
	k.Run()
}

func TestCircLogReleaseToPanics(t *testing.T) {
	k := sim.New()
	defer k.Close()
	l := newTestLog(k, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("ReleaseTo past tail did not panic")
		}
	}()
	l.ReleaseTo(5)
}

func TestCircLogConcurrentAppendsDoNotInterleave(t *testing.T) {
	k := sim.New()
	defer k.Close()
	// Use a real SSD so completions are delayed and reordered vs submits.
	dev := flashsim.NewSSD(k, flashsim.SamsungDCT983(1<<20))
	l := NewCircLog(k, dev, 0, 1<<19)
	type rec struct {
		off  int64
		data []byte
	}
	var recs []rec
	for i := 0; i < 20; i++ {
		i := i
		k.Go("w", func(p *sim.Proc) {
			data := bytes.Repeat([]byte{byte(i + 1)}, 100+i)
			off, ev, err := l.Append(data)
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			p.Wait(ev)
			recs = append(recs, rec{off, data})
		})
	}
	k.Run()
	k2 := sim.New()
	defer k2.Close()
	_ = k2
	// Verify every record reads back intact.
	k.Go("verify", func(p *sim.Proc) {
		for _, r := range recs {
			got := make([]byte, len(r.data))
			if err := l.Read(p, r.off, got); err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if !bytes.Equal(got, r.data) {
				t.Errorf("record at %d corrupted", r.off)
			}
		}
	})
	k.Run()
	if len(recs) != 20 {
		t.Fatalf("only %d records", len(recs))
	}
}
