package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBucketRoundTrip(t *testing.T) {
	b := &Bucket{
		SegID:       77,
		ChainLen:    3,
		ChainPos:    1,
		ValHeadHint: 1000,
		ValTailHint: 5000,
		Seq:         42,
		Items: []Item{
			{Key: []byte("alpha"), ValLen: 100, ValOff: 10, SSDID: 0},
			{Key: []byte("beta"), ValLen: 0, ValOff: 0, SSDID: 0}, // tombstone
			{Key: []byte("gamma"), ValLen: 7, ValOff: 999999, SSDID: 3},
		},
	}
	blk := make([]byte, 512)
	if err := b.Marshal(blk); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBucket(blk)
	if err != nil {
		t.Fatal(err)
	}
	if got.SegID != 77 || got.ChainLen != 3 || got.ChainPos != 1 ||
		got.ValHeadHint != 1000 || got.ValTailHint != 5000 || got.Seq != 42 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Items) != 3 {
		t.Fatalf("items = %d", len(got.Items))
	}
	if string(got.Items[0].Key) != "alpha" || got.Items[0].ValLen != 100 {
		t.Fatalf("item 0 = %+v", got.Items[0])
	}
	if !got.Items[1].Deleted() {
		t.Fatal("tombstone lost")
	}
	if got.Items[2].SSDID != 3 || got.Items[2].ValOff != 999999 {
		t.Fatalf("item 2 = %+v", got.Items[2])
	}
}

func TestBucketCRCDetectsCorruption(t *testing.T) {
	b := &Bucket{SegID: 1, ChainLen: 1, Items: []Item{{Key: []byte("k"), ValLen: 5, ValOff: 9}}}
	blk := make([]byte, 512)
	if err := b.Marshal(blk); err != nil {
		t.Fatal(err)
	}
	blk[100] ^= 0xff
	if _, err := UnmarshalBucket(blk); err == nil {
		t.Fatal("corrupted bucket parsed successfully")
	}
}

func TestBucketBadMagic(t *testing.T) {
	blk := make([]byte, 512)
	if _, err := UnmarshalBucket(blk); err == nil {
		t.Fatal("zero block parsed as bucket")
	}
	if ProbeBucket(blk) {
		t.Fatal("ProbeBucket accepted zero block")
	}
}

func TestBucketOverflowRejected(t *testing.T) {
	b := &Bucket{}
	for i := 0; i < 40; i++ {
		b.Items = append(b.Items, Item{Key: bytes.Repeat([]byte{byte(i)}, 16), ValLen: 1})
	}
	blk := make([]byte, 512)
	if err := b.Marshal(blk); err == nil {
		t.Fatal("oversized bucket marshaled into one block")
	}
}

func TestBucketSpaceLeft(t *testing.T) {
	b := &Bucket{}
	free0 := b.SpaceLeft(512)
	if free0 != 512-bucketHdrSize {
		t.Fatalf("empty bucket space = %d", free0)
	}
	b.Items = append(b.Items, Item{Key: make([]byte, 16)})
	if got := b.SpaceLeft(512); got != free0-(itemHdrSize+16) {
		t.Fatalf("space after insert = %d", got)
	}
}

func TestBucketRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &Bucket{
			SegID:    rng.Uint32(),
			ChainLen: uint8(rng.Intn(4) + 1),
			ChainPos: uint8(rng.Intn(4)),
			Seq:      rng.Uint64(),
		}
		space := 512 - bucketHdrSize
		for {
			kl := rng.Intn(24) + 1
			if space < itemHdrSize+kl {
				break
			}
			key := make([]byte, kl)
			rng.Read(key)
			b.Items = append(b.Items, Item{
				Key:    key,
				ValLen: uint32(rng.Intn(1 << 16)),
				ValOff: rng.Int63(),
				SSDID:  uint8(rng.Intn(4)),
			})
			space -= itemHdrSize + kl
		}
		blk := make([]byte, 512)
		if err := b.Marshal(blk); err != nil {
			return false
		}
		got, err := UnmarshalBucket(blk)
		if err != nil {
			return false
		}
		if len(got.Items) != len(b.Items) {
			return false
		}
		for i := range b.Items {
			w, g := &b.Items[i], &got.Items[i]
			if !bytes.Equal(w.Key, g.Key) || w.ValLen != g.ValLen ||
				w.ValOff != g.ValOff || w.SSDID != g.SSDID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueEntryRoundTrip(t *testing.T) {
	key, val := []byte("user:12345"), bytes.Repeat([]byte{0xAB}, 256)
	buf := make([]byte, ValueEntrySize(len(key), len(val)))
	if err := MarshalValueEntry(buf, key, val); err != nil {
		t.Fatal(err)
	}
	k2, v2, size, err := ParseValueEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k2, key) || !bytes.Equal(v2, val) || size != len(buf) {
		t.Fatal("value entry round trip mismatch")
	}
}

func TestValueEntryTruncated(t *testing.T) {
	key, val := []byte("k"), []byte("vvvv")
	buf := make([]byte, ValueEntrySize(len(key), len(val)))
	MarshalValueEntry(buf, key, val)
	if _, _, _, err := ParseValueEntry(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated entry parsed")
	}
	if _, _, _, err := ParseValueEntry(buf[:3]); err == nil {
		t.Fatal("tiny entry parsed")
	}
}

func TestValueEntryBadMagic(t *testing.T) {
	buf := make([]byte, 32)
	if _, _, _, err := ParseValueEntry(buf); err == nil {
		t.Fatal("zero buffer parsed as value entry")
	}
}

func TestKeyTooLargeRejected(t *testing.T) {
	big := make([]byte, MaxKeyLen+1)
	b := &Bucket{Items: []Item{{Key: big, ValLen: 1}}}
	blk := make([]byte, 4096)
	if err := b.Marshal(blk); err == nil {
		t.Fatal("oversized key marshaled")
	}
	buf := make([]byte, ValueEntrySize(len(big), 1))
	if err := MarshalValueEntry(buf, big, []byte{1}); err == nil {
		t.Fatal("oversized key in value entry")
	}
}
