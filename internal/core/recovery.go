package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"leed/internal/flashsim"
	"leed/internal/runtime"
)

// Crash recovery (§3.2.3). The store persists a superblock (log head/tail
// pointers) whenever compaction moves a head. On restart, Recover reads the
// superblock, then scans the key log forward from the persisted head,
// rebuilding the SegTbl from the segment arrays it finds. Scanning
// continues past the persisted tail as long as blocks still parse as valid
// buckets with strictly increasing sequence numbers — recovering appends
// that postdate the last superblock write. A PUT is durable once its
// segment array is on flash, because the bucket's ValTailHint field also
// recovers the value-log tail.

const superMagic = 0x1EEDB00C

// recoveryHoleProbe is how many consecutive garbage blocks the key-log scan
// will step over beyond the superblock-durable tail before concluding it has
// reached the end of the log. It bounds the size of recoverable holes left
// by failed group commits that a racing append kept the tail advanced past.
const recoveryHoleProbe = 128

type superblock struct {
	keyHead, keyTail   int64
	valHead, valTail   int64
	swapHead, swapTail int64
	seq                uint64
}

func (sb *superblock) marshal(dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint32(dst[0:], superMagic)
	binary.LittleEndian.PutUint64(dst[8:], uint64(sb.keyHead))
	binary.LittleEndian.PutUint64(dst[16:], uint64(sb.keyTail))
	binary.LittleEndian.PutUint64(dst[24:], uint64(sb.valHead))
	binary.LittleEndian.PutUint64(dst[32:], uint64(sb.valTail))
	binary.LittleEndian.PutUint64(dst[40:], uint64(sb.swapHead))
	binary.LittleEndian.PutUint64(dst[48:], uint64(sb.swapTail))
	binary.LittleEndian.PutUint64(dst[56:], sb.seq)
	binary.LittleEndian.PutUint32(dst[64:], crc32.Checksum(dst[:64], castagnoli))
}

func parseSuperblock(src []byte) (*superblock, bool) {
	if len(src) < 68 || binary.LittleEndian.Uint32(src[0:]) != superMagic {
		return nil, false
	}
	if crc32.Checksum(src[:64], castagnoli) != binary.LittleEndian.Uint32(src[64:]) {
		return nil, false
	}
	return &superblock{
		keyHead:  int64(binary.LittleEndian.Uint64(src[8:])),
		keyTail:  int64(binary.LittleEndian.Uint64(src[16:])),
		valHead:  int64(binary.LittleEndian.Uint64(src[24:])),
		valTail:  int64(binary.LittleEndian.Uint64(src[32:])),
		swapHead: int64(binary.LittleEndian.Uint64(src[40:])),
		swapTail: int64(binary.LittleEndian.Uint64(src[48:])),
		seq:      binary.LittleEndian.Uint64(src[56:]),
	}, true
}

// writeSuperblock persists the current log pointers. Called by compaction
// after a head moves, and by Flush.
func (s *Store) writeSuperblock(p runtime.Task) error {
	sb := superblock{
		keyHead: s.keyLog.Head(), keyTail: s.keyLog.Tail(),
		valHead: s.valLog.Head(), valTail: s.valLog.Tail(),
		seq: s.seq,
	}
	if s.swapLog != nil {
		sb.swapHead, sb.swapTail = s.swapLog.Head(), s.swapLog.Tail()
	}
	buf := make([]byte, s.cfg.BlockSize)
	sb.marshal(buf)
	done := s.env.MakeEvent()
	s.cfg.Device.Submit(&flashsim.Op{Kind: flashsim.OpWrite, Offset: s.cfg.RegionOff, Data: buf, Done: done})
	if v := p.Wait(done); v != nil {
		return v.(error)
	}
	return nil
}

// Flush persists the superblock; callers use it to bound recovery scans. It
// first issues an OpFlush barrier: on a submission-queue device
// (flashsim.AsyncFileDevice) that drains every queued write and syncs the
// backing file, so the superblock never describes state the device hasn't
// committed. On purely modeled devices the barrier is an ordering no-op.
func (s *Store) Flush(p runtime.Task) error {
	done := s.env.MakeEvent()
	s.cfg.Device.Submit(&flashsim.Op{Kind: flashsim.OpFlush, Done: done})
	if v := p.Wait(done); v != nil {
		return v.(error)
	}
	return s.writeSuperblock(p)
}

// Recover rebuilds a store's DRAM state from flash. Call it on a freshly
// constructed Store (same Config) whose region holds a previous instance's
// data. It returns the number of segments recovered.
func (s *Store) Recover(p runtime.Task) (int, error) {
	bs := int64(s.cfg.BlockSize)
	sbBuf := make([]byte, s.cfg.BlockSize)
	done := s.env.MakeEvent()
	s.cfg.Device.Submit(&flashsim.Op{Kind: flashsim.OpRead, Offset: s.cfg.RegionOff, Data: sbBuf, Done: done})
	if v := p.Wait(done); v != nil {
		return 0, v.(error)
	}
	sb, ok := parseSuperblock(sbBuf)
	if !ok {
		return 0, nil // fresh region: nothing to recover
	}

	// Open the key-log window wide so the scan may pass the persisted tail.
	upper := sb.keyHead + s.keyLog.Size()
	s.keyLog.Restore(sb.keyHead, upper)

	latest := make(map[uint32][]*Bucket)
	latestOff := make(map[uint32]int64)
	maxSeq := sb.seq
	maxValTail := sb.valTail
	pos := sb.keyHead
	end := pos // recovered tail: past accepted arrays and durable holes, never past probe skips
	liveKeyBytes := int64(0)

	// skipHole steps over one garbage block. Inside the superblock-durable
	// region a hole is a failed append the tail already passed; the budget is
	// unlimited because the durable tail bounds the walk. Beyond the durable
	// tail a hole can still precede live data — a group commit that failed
	// while a racing append landed behind it — so the scan probes ahead a
	// bounded number of blocks instead of declaring end-of-log; on genuine
	// end-of-log it gives up after recoveryHoleProbe blocks of garbage.
	probeBudget := recoveryHoleProbe
	skipHole := func() bool {
		if pos+bs <= sb.keyTail {
			pos += bs
			end = pos
			return true
		}
		if probeBudget > 0 {
			probeBudget--
			pos += bs
			return true
		}
		return false
	}
scan:
	for pos+bs <= upper {
		blk := make([]byte, bs)
		if err := s.keyLog.Read(p, pos, blk); err != nil {
			return 0, err
		}
		b0, err := UnmarshalBucket(blk)
		if err != nil || b0.ChainPos != 0 || b0.ChainLen == 0 ||
			(pos >= sb.keyTail && b0.Seq <= maxSeq) {
			// Unparseable garbage, or stale pre-wrap data beyond the durable
			// tail: a hole or the end of the log — probe to find out.
			if skipHole() {
				continue
			}
			break
		}
		chain := int(b0.ChainLen)
		buckets := []*Bucket{b0}
		for i := 1; i < chain; i++ {
			cblk := make([]byte, bs)
			if err := s.keyLog.Read(p, pos+int64(i)*bs, cblk); err != nil {
				return 0, err
			}
			bi, err := UnmarshalBucket(cblk)
			if err != nil || bi.Seq != b0.Seq || int(bi.ChainPos) != i {
				// Torn chain: the head block landed but the rest didn't.
				if skipHole() {
					continue scan
				}
				break scan
			}
			buckets = append(buckets, bi)
		}
		if old, had := latest[b0.SegID]; had {
			if b0.Seq < old[0].Seq {
				// A hole whose previous-lap content still parses: it predates
				// the array already recovered for this segment. Step past it.
				pos += int64(chain) * bs
				continue
			}
			liveKeyBytes -= int64(len(old)) * bs
		}
		latest[b0.SegID] = buckets
		latestOff[b0.SegID] = pos
		liveKeyBytes += int64(chain) * bs
		if b0.Seq > maxSeq {
			maxSeq = b0.Seq
		}
		if b0.ValTailHint > maxValTail {
			maxValTail = b0.ValTailHint
		}
		pos += int64(chain) * bs
		end = pos
		probeBudget = recoveryHoleProbe
	}
	if end < sb.keyTail {
		end = sb.keyTail // reservations persisted in the superblock stay reserved
	}
	s.keyLog.Restore(sb.keyHead, end)
	s.valLog.Restore(sb.valHead, maxValTail)
	s.seq = maxSeq

	// Rebuild the SegTbl and derived accounting.
	liveValBytes := int64(0)
	liveValEntryBytes := int64(0)
	objects := int64(0)
	for seg, buckets := range latest {
		s.segs.Set(seg, latestOff[seg], len(buckets))
		for _, b := range buckets {
			for i := range b.Items {
				it := &b.Items[i]
				if it.Deleted() {
					continue
				}
				objects++
				liveValBytes += int64(it.ValLen)
				if it.SSDID == s.cfg.DevID {
					liveValEntryBytes += int64(ValueEntrySize(len(it.Key), int(it.ValLen)))
				} else {
					s.pendingSwaps[seg] = struct{}{}
				}
			}
		}
	}
	s.stats.Objects = objects
	s.stats.LiveValBytes = liveValBytes
	s.valGarbage = s.valLog.Used() - liveValEntryBytes
	if s.valGarbage < 0 {
		s.valGarbage = 0
	}
	s.keyGarbage = s.keyLog.Used() - liveKeyBytes
	if s.keyGarbage < 0 {
		s.keyGarbage = 0
	}

	// Swap region: restore the persisted window and re-index its entries,
	// which may be value entries or whole segment arrays (§3.6).
	if s.swapLog != nil {
		s.swapLog.Restore(sb.swapHead, sb.swapTail)
		off := sb.swapHead
		for off < sb.swapTail {
			hdr := make([]byte, bs)
			n := sb.swapTail - off
			if n > bs {
				n = bs
			}
			if err := s.swapLog.Read(p, off, hdr[:n]); err != nil {
				return 0, err
			}
			var size int64
			switch {
			case n >= bucketHdrSize && ProbeBucket(hdr[:n]):
				b0, berr := UnmarshalBucket(hdr[:n])
				if berr != nil {
					return 0, fmt.Errorf("%w: swap log segment at %d", ErrCorrupt, off)
				}
				size = int64(b0.ChainLen) * bs
			case n >= valueHdrSize && binary.LittleEndian.Uint16(hdr[0:]) == valueMagic:
				size = int64(ValueEntrySize(int(hdr[2]), int(binary.LittleEndian.Uint32(hdr[4:]))))
			default:
				return 0, fmt.Errorf("%w: swap log entry at %d", ErrCorrupt, off)
			}
			s.swapMeta[off] = size
			off += size
		}
	}
	return len(latest), nil
}
