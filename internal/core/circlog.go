package core

import (
	"fmt"

	"leed/internal/flashsim"
	"leed/internal/runtime"
)

// CircLog is a fixed-size circular log on a region of a device (§3.2.1).
// Offsets handed out are *logical*: they increase monotonically forever and
// are mapped onto the physical region modulo its size, which makes offset
// validity checks (is this entry still live?) a pair of comparisons against
// head and tail. The log supports three operations: read from a valid
// offset, append at the tail, and release (advance the head) after
// compaction.
type CircLog struct {
	env  runtime.Env
	dev  flashsim.Device
	off  int64 // physical start of the region
	size int64
	head int64 // logical: first live byte
	tail int64 // logical: first free byte

	appends int64
	reads   int64
}

// NewCircLog creates a log over dev[off, off+size).
func NewCircLog(env runtime.Env, dev flashsim.Device, off, size int64) *CircLog {
	if size <= 0 || off < 0 || off+size > dev.Capacity() {
		panic(fmt.Sprintf("core: bad circular log region [%d,+%d) on device of %d", off, size, dev.Capacity()))
	}
	return &CircLog{env: env, dev: dev, off: off, size: size}
}

// Size returns the region size in bytes.
func (l *CircLog) Size() int64 { return l.size }

// Head returns the logical offset of the first live byte.
func (l *CircLog) Head() int64 { return l.head }

// Tail returns the logical offset where the next append lands.
func (l *CircLog) Tail() int64 { return l.tail }

// Used returns live-region bytes (tail - head).
func (l *CircLog) Used() int64 { return l.tail - l.head }

// Free returns appendable bytes.
func (l *CircLog) Free() int64 { return l.size - l.Used() }

// Contains reports whether [logical, logical+n) lies in the live region.
func (l *CircLog) Contains(logical, n int64) bool {
	return logical >= l.head && logical+n <= l.tail
}

// phys maps a logical offset to its physical device offset.
func (l *CircLog) phys(logical int64) int64 { return l.off + logical%l.size }

// submitWrap issues one logical-range op, splitting at the physical wrap
// point if needed, and returns an event that fires when all parts complete.
func (l *CircLog) submitWrap(kind flashsim.OpKind, logical int64, data []byte) runtime.Event {
	done := l.env.MakeEvent()
	p0 := l.phys(logical)
	first := l.off + l.size - p0
	if int64(len(data)) <= first {
		op := &flashsim.Op{Kind: kind, Offset: p0, Data: data, Done: done}
		l.dev.Submit(op)
		return done
	}
	// Straddles the wrap point: two device ops, fire when both are done.
	d1, d2 := l.env.MakeEvent(), l.env.MakeEvent()
	l.dev.Submit(&flashsim.Op{Kind: kind, Offset: p0, Data: data[:first], Done: d1})
	l.dev.Submit(&flashsim.Op{Kind: kind, Offset: l.off, Data: data[first:], Done: d2})
	pending := 2
	var firstErr any
	cb := func(v any) {
		if v != nil && firstErr == nil {
			firstErr = v
		}
		pending--
		if pending == 0 {
			done.Fire(firstErr)
		}
	}
	d1.OnFire(cb)
	d2.OnFire(cb)
	return done
}

// Append reserves space at the tail and issues the write. It returns the
// logical offset of the record and a completion event (payload nil or
// error). The reservation is immediate, so concurrent appenders never
// interleave their bytes. ErrLogFull is returned when the live region
// cannot absorb the record.
func (l *CircLog) Append(data []byte) (logical int64, done runtime.Event, err error) {
	n := int64(len(data))
	if n > l.size {
		return 0, nil, ErrValueTooLarge
	}
	if n > l.Free() {
		return 0, nil, ErrLogFull
	}
	logical = l.tail
	l.tail += n
	l.appends++
	return logical, l.submitWrap(flashsim.OpWrite, logical, data), nil
}

// Unappend gives back a failed append's reservation. It succeeds only while
// the record is still the last one appended — once another append has
// advanced the tail the bytes cannot be reclaimed and the record stays in
// the log as garbage for compaction. Callers use this after a device write
// error so the log does not keep a torn record at its tail.
func (l *CircLog) Unappend(logical, n int64) bool {
	if l.tail != logical+n {
		return false
	}
	l.tail = logical
	return true
}

// ReadAsync issues a read of len(buf) bytes at the logical offset and
// returns the completion event. The offset must be within the live region.
func (l *CircLog) ReadAsync(logical int64, buf []byte) (runtime.Event, error) {
	if !l.Contains(logical, int64(len(buf))) {
		return nil, fmt.Errorf("%w: read [%d,+%d) outside live [%d,%d)", ErrCorrupt, logical, len(buf), l.head, l.tail)
	}
	l.reads++
	return l.submitWrap(flashsim.OpRead, logical, buf), nil
}

// Read performs a blocking read from a proc.
func (l *CircLog) Read(p runtime.Task, logical int64, buf []byte) error {
	ev, err := l.ReadAsync(logical, buf)
	if err != nil {
		return err
	}
	if v := p.Wait(ev); v != nil {
		return v.(error)
	}
	return nil
}

// ReleaseTo advances the head to newHead, reclaiming the space before it.
// Compaction calls this after relocating all live records below newHead.
func (l *CircLog) ReleaseTo(newHead int64) {
	if newHead < l.head || newHead > l.tail {
		panic(fmt.Sprintf("core: ReleaseTo(%d) outside [%d,%d]", newHead, l.head, l.tail))
	}
	l.head = newHead
}

// Restore forcibly sets head and tail; used only by recovery.
func (l *CircLog) Restore(head, tail int64) {
	if head > tail || tail-head > l.size {
		panic("core: Restore with invalid pointers")
	}
	l.head, l.tail = head, tail
}

// Stats returns (appends, reads) issued so far.
func (l *CircLog) Stats() (appends, reads int64) { return l.appends, l.reads }
