package core

import (
	"fmt"

	"leed/internal/flashsim"
	"leed/internal/runtime"
)

// CircLog is a fixed-size circular log on a region of a device (§3.2.1).
// Offsets handed out are *logical*: they increase monotonically forever and
// are mapped onto the physical region modulo its size, which makes offset
// validity checks (is this entry still live?) a pair of comparisons against
// head and tail. The log supports three operations: read from a valid
// offset, append at the tail, and release (advance the head) after
// compaction.
type CircLog struct {
	env  runtime.Env
	dev  flashsim.Device
	off  int64 // physical start of the region
	size int64
	head int64 // logical: first live byte
	tail int64 // logical: first free byte

	// Group commit (§3.5's batched doorbells, applied to the log): Append
	// only reserves space and stages the record; a zero-delay flush event
	// merges everything staged at that instant into one device write. At
	// most maxGroupWrites group writes are in flight — appends arriving
	// with the pipeline full stage into the next group, so group size
	// adapts to device latency: the slower the device, the more appends
	// each write carries. Reservations are handed out contiguously, so the
	// staged records always form a single logical range starting at
	// stagedStart.
	staged      []stagedAppend
	stagedStart int64
	stagedBytes int64
	flushArmed  bool
	inFlight    int
	flushFn     func() // bound once; After(0, l.flushAppends) would allocate per arm

	appends      int64
	reads        int64
	groupCommits int64 // device writes that carried more than one append
}

// stagedAppend is one reserved-but-unsubmitted append.
type stagedAppend struct {
	data []byte
	done runtime.Event
}

// maxGroupWrites is the log's commit pipeline depth: how many group writes
// may be on the device at once. Successive groups cover adjacent (never
// overlapping) ranges, so they can be in flight together and the device
// parallelism absorbs them. minPipelineGroup gates when a new group may
// join a non-empty pipeline: while any write is in flight, a flush arms
// only once that many appends (or maxGroupBytes of payload) are staged.
// Without the gate, trickling appends each depart in their own tiny group
// (measured on the wall-clock bench: 2-3x the device writes, each paying
// full service time); with it, light load degenerates to one
// maximally-merged group per device round-trip while bursts still fan out
// across the pipeline. maxGroupBytes caps one group's write: merging
// amortizes a write's base cost, but an unbounded group occupies a single
// device service unit for time linear in its size, starving the device's
// internal parallelism a burst would otherwise use.
const (
	maxGroupWrites   = 4
	minPipelineGroup = 8
	maxGroupBytes    = 16 << 10
)

// NewCircLog creates a log over dev[off, off+size).
func NewCircLog(env runtime.Env, dev flashsim.Device, off, size int64) *CircLog {
	if size <= 0 || off < 0 || off+size > dev.Capacity() {
		panic(fmt.Sprintf("core: bad circular log region [%d,+%d) on device of %d", off, size, dev.Capacity()))
	}
	l := &CircLog{env: env, dev: dev, off: off, size: size}
	l.flushFn = l.flushAppends
	return l
}

// Size returns the region size in bytes.
func (l *CircLog) Size() int64 { return l.size }

// Head returns the logical offset of the first live byte.
func (l *CircLog) Head() int64 { return l.head }

// Tail returns the logical offset where the next append lands.
func (l *CircLog) Tail() int64 { return l.tail }

// Used returns live-region bytes (tail - head).
func (l *CircLog) Used() int64 { return l.tail - l.head }

// Free returns appendable bytes.
func (l *CircLog) Free() int64 { return l.size - l.Used() }

// Contains reports whether [logical, logical+n) lies in the live region.
func (l *CircLog) Contains(logical, n int64) bool {
	return logical >= l.head && logical+n <= l.tail
}

// phys maps a logical offset to its physical device offset.
func (l *CircLog) phys(logical int64) int64 { return l.off + logical%l.size }

// submitWrap issues one logical-range op, splitting at the physical wrap
// point if needed, and returns an event that fires when all parts complete.
func (l *CircLog) submitWrap(kind flashsim.OpKind, logical int64, data []byte) runtime.Event {
	done := l.env.MakeEvent()
	p0 := l.phys(logical)
	first := l.off + l.size - p0
	if int64(len(data)) <= first {
		op := &flashsim.Op{Kind: kind, Offset: p0, Data: data, Done: done}
		l.dev.Submit(op)
		return done
	}
	// Straddles the wrap point: two device ops, fire when both are done.
	d1, d2 := l.env.MakeEvent(), l.env.MakeEvent()
	l.dev.Submit(&flashsim.Op{Kind: kind, Offset: p0, Data: data[:first], Done: d1})
	l.dev.Submit(&flashsim.Op{Kind: kind, Offset: l.off, Data: data[first:], Done: d2})
	pending := 2
	var firstErr any
	cb := func(v any) {
		if v != nil && firstErr == nil {
			firstErr = v
		}
		pending--
		if pending == 0 {
			done.Fire(firstErr)
		}
	}
	d1.OnFire(cb)
	d2.OnFire(cb)
	return done
}

// Append reserves space at the tail and stages the write for group commit:
// the record is submitted by a zero-delay flush event together with every
// other append staged in the same instant, as one device write. It returns
// the logical offset of the record and a completion event (payload nil or
// error). The reservation is immediate, so concurrent appenders never
// interleave their bytes; data must not be mutated until the event fires.
// ErrLogFull is returned when the live region cannot absorb the record.
func (l *CircLog) Append(data []byte) (logical int64, done runtime.Event, err error) {
	n := int64(len(data))
	if n > l.size {
		return 0, nil, ErrValueTooLarge
	}
	if n > l.Free() {
		return 0, nil, ErrLogFull
	}
	logical = l.tail
	l.tail += n
	l.appends++
	done = l.env.MakeEvent()
	if len(l.staged) == 0 {
		l.stagedStart = logical
	}
	l.staged = append(l.staged, stagedAppend{data: data, done: done})
	l.stagedBytes += n
	if !l.flushArmed && l.inFlight < maxGroupWrites &&
		(l.inFlight == 0 || len(l.staged) >= minPipelineGroup || l.stagedBytes >= maxGroupBytes) {
		l.flushArmed = true
		l.env.After(0, l.flushFn)
	}
	return logical, done, nil
}

// flushAppends submits everything staged as one device write and fans the
// result out to each append's event. A failed combined write fails every
// append in the group; each caller then reclaims (or accounts for) its own
// reservation via Unappend, exactly as with per-append writes. The flush
// deliberately does not touch the tail itself: rolling the whole group back
// here would let a later append reuse a group member's offset before that
// member's caller ran its error path, making the two reservations
// indistinguishable to Unappend.
func (l *CircLog) flushAppends() {
	l.flushArmed = false
	if l.inFlight >= maxGroupWrites || len(l.staged) == 0 {
		return
	}
	// Take the longest staged prefix within maxGroupBytes (always at least
	// one append; an oversized record goes out alone).
	n, total := 0, int64(0)
	for n < len(l.staged) && (n == 0 || total+int64(len(l.staged[n].data)) <= maxGroupBytes) {
		total += int64(len(l.staged[n].data))
		n++
	}
	staged := l.staged[:n:n]
	start := l.stagedStart
	l.staged = l.staged[n:]
	l.stagedBytes -= total
	l.stagedStart += total
	l.inFlight++
	var ev runtime.Event
	if len(staged) == 1 {
		ev = l.submitWrap(flashsim.OpWrite, start, staged[0].data)
	} else {
		buf := make([]byte, 0, total)
		for _, a := range staged {
			buf = append(buf, a.data...)
		}
		ev = l.submitWrap(flashsim.OpWrite, start, buf)
		l.groupCommits++
	}
	// A cap-split remainder is a full-size group by construction: let it
	// chase this write down the pipeline immediately.
	if len(l.staged) > 0 && l.inFlight < maxGroupWrites && !l.flushArmed {
		l.flushArmed = true
		l.env.After(0, l.flushFn)
	}
	ev.OnFire(func(v any) {
		l.inFlight--
		for _, a := range staged {
			a.done.Fire(v)
		}
		// Appends staged while the pipeline was full form the next group.
		if len(l.staged) > 0 && !l.flushArmed {
			l.flushArmed = true
			l.env.After(0, l.flushFn)
		}
	})
}

// Unappend gives back a failed append's reservation. It succeeds only while
// the record is still the last one appended; once another append has
// advanced the tail the bytes cannot be reclaimed, and the record stays in
// the log as a hole that recovery skips and compaction reclaims. Members of
// a failed group commit reclaim in LIFO order: whichever callers reach
// Unappend while their record is still at the tail roll it back, the rest
// become holes.
func (l *CircLog) Unappend(logical, n int64) bool {
	if l.tail == logical+n {
		l.tail = logical
		return true
	}
	return false
}

// ReadAsync issues a read of len(buf) bytes at the logical offset and
// returns the completion event. The offset must be within the live region.
func (l *CircLog) ReadAsync(logical int64, buf []byte) (runtime.Event, error) {
	if !l.Contains(logical, int64(len(buf))) {
		return nil, fmt.Errorf("%w: read [%d,+%d) outside live [%d,%d)", ErrCorrupt, logical, len(buf), l.head, l.tail)
	}
	l.reads++
	return l.submitWrap(flashsim.OpRead, logical, buf), nil
}

// ReadNow attempts the read synchronously via the device's optional
// SyncReader capability (a wrap-straddling read becomes two inline device
// reads, mirroring submitWrap's two ops). done=false means the device
// declined — not enabled, or no capability — and the caller should fall
// back to ReadAsync; on that path no state has changed and nothing was
// counted. This is the allocation-free leg of the GET hot path: the async
// route costs an event, a submit closure, and a timer per read.
func (l *CircLog) ReadNow(logical int64, buf []byte) (done bool, err error) {
	sr, ok := l.dev.(flashsim.SyncReader)
	if !ok {
		return false, nil
	}
	n := int64(len(buf))
	if !l.Contains(logical, n) {
		return false, nil // ReadAsync reports the range error
	}
	p0 := l.phys(logical)
	first := l.off + l.size - p0
	if n <= first {
		if !sr.TryReadAt(buf, p0) {
			return false, nil
		}
	} else {
		if !sr.TryReadAt(buf[:first], p0) {
			return false, nil
		}
		if !sr.TryReadAt(buf[first:], l.off) {
			return false, nil
		}
	}
	l.reads++
	return true, nil
}

// Read performs a blocking read from a proc.
func (l *CircLog) Read(p runtime.Task, logical int64, buf []byte) error {
	ev, err := l.ReadAsync(logical, buf)
	if err != nil {
		return err
	}
	if v := p.Wait(ev); v != nil {
		return v.(error)
	}
	return nil
}

// ReleaseTo advances the head to newHead, reclaiming the space before it.
// Compaction calls this after relocating all live records below newHead.
func (l *CircLog) ReleaseTo(newHead int64) {
	if newHead < l.head || newHead > l.tail {
		panic(fmt.Sprintf("core: ReleaseTo(%d) outside [%d,%d]", newHead, l.head, l.tail))
	}
	l.head = newHead
}

// Restore forcibly sets head and tail; used only by recovery.
func (l *CircLog) Restore(head, tail int64) {
	if head > tail || tail-head > l.size {
		panic("core: Restore with invalid pointers")
	}
	l.head, l.tail = head, tail
}

// Stats returns (appends, reads) issued so far.
func (l *CircLog) Stats() (appends, reads int64) { return l.appends, l.reads }

// GroupCommits returns how many device writes carried more than one append.
func (l *CircLog) GroupCommits() int64 { return l.groupCommits }
