// Package core implements the LEED per-SSD data store (§3.2–§3.3 of the
// paper): a circular key log and a circular value log on flash, a compact
// in-DRAM segment table (the DRAM/Flash hybrid index), GET/PUT/DEL command
// processing with overlapped NVMe accesses, parallel sub-compactions with
// prefetching, intra-JBOF value swapping support, and crash recovery.
//
// One Store owns one partition (virtual node) of one SSD. All methods that
// perform I/O take a runtime.Task and block in virtual time; compute phases are
// charged to the configured Exec so core contention is modeled faithfully.
package core

import "errors"

// Sentinel errors returned by store operations.
var (
	// ErrNotFound reports that the key does not exist (or was deleted).
	ErrNotFound = errors.New("core: key not found")
	// ErrLogFull reports that a circular log has no room for an append and
	// compaction reclaimed nothing.
	ErrLogFull = errors.New("core: circular log full")
	// ErrSegmentFull reports that a segment's chain reached its maximum
	// length with every bucket full.
	ErrSegmentFull = errors.New("core: segment chain full")
	// ErrCorrupt reports an on-flash structure that failed validation.
	ErrCorrupt = errors.New("core: corrupt on-flash structure")
	// ErrKeyTooLarge reports a key exceeding the bucket item limit.
	ErrKeyTooLarge = errors.New("core: key too large")
	// ErrValueTooLarge reports a value too large for the value log.
	ErrValueTooLarge = errors.New("core: value too large")
)
