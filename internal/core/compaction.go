package core

import (
	"sort"

	"leed/internal/runtime"
)

// Compaction (§3.3.1). Both logs are reclaimed in bounded rounds: read a
// chunk at the head (ideally already prefetched during the previous round),
// decide liveness of every record in it, relocate the live ones to the
// tail, and advance the head. A round is divided into S sub-compactions
// that run as parallel procs so their SSD accesses overlap — the paper's
// intra-compaction parallelism (Figure 13a). Prefetching the next round's
// chunk while this round runs removes the head read from the critical path.

// valEntryRef is one parsed value-log entry within a compaction chunk.
type valEntryRef struct {
	off  int64 // logical offset in the value log
	size int64
	key  []byte
	data []byte // full entry bytes (aliases the chunk)
	seg  uint32
	done bool
}

// fetchChunk returns a chunk of up to want bytes from the log head, using
// the prefetch buffer when it matches, and arranges the next prefetch.
func (s *Store) fetchChunk(p runtime.Task, st *OpStats, log *CircLog, pf *prefetchBuf, want int64) ([]byte, error) {
	if want > log.Used() {
		want = log.Used()
	}
	if want <= 0 {
		return nil, nil
	}
	if pf.valid && pf.off == log.Head() && int64(len(pf.buf)) <= log.Used() {
		pf.valid = false
		if err := s.ssdWait(p, st, pf.ev); err == nil {
			s.stats.PrefetchHits++
			if int64(len(pf.buf)) >= want {
				return pf.buf[:want], nil
			}
			return pf.buf, nil
		}
	}
	pf.valid = false
	buf := make([]byte, want)
	ev, err := log.ReadAsync(log.Head(), buf)
	if err != nil {
		return nil, err
	}
	st.Reads++
	if err := s.ssdWait(p, st, ev); err != nil {
		return nil, err
	}
	return buf, nil
}

// prefetchNext issues the read for the next compaction round's chunk.
func (s *Store) prefetchNext(log *CircLog, pf *prefetchBuf) {
	if !s.cfg.Prefetch {
		return
	}
	want := s.cfg.CompactChunk
	if want > log.Used() {
		want = log.Used()
	}
	if want <= 0 {
		pf.valid = false
		return
	}
	buf := make([]byte, want)
	ev, err := log.ReadAsync(log.Head(), buf)
	if err != nil {
		pf.valid = false
		return
	}
	*pf = prefetchBuf{valid: true, off: log.Head(), buf: buf, ev: ev}
}

// CompactValueLog runs one value-log compaction round and returns the bytes
// reclaimed. Pending swapped values are merged back first (§3.6: the swap
// region is merged back during future compactions).
func (s *Store) CompactValueLog(p runtime.Task) (int64, error) {
	if s.compacting {
		return 0, nil
	}
	s.compacting = true
	defer func() { s.compacting = false }()
	s.stats.ValCompactions++

	if s.cfg.MergeOK == nil || s.cfg.MergeOK() {
		if _, err := s.Mergeback(p, 64); err != nil {
			return 0, err
		}
	}
	if s.valGarbage <= 0 {
		// Nothing dead: a round would only churn live data from head to
		// tail (and burn key-log space rewriting segments).
		return 0, nil
	}

	var st OpStats
	chunk, err := s.fetchChunk(p, &st, s.valLog, &s.vpf, s.cfg.CompactChunk)
	if err != nil || chunk == nil {
		return 0, err
	}
	head := s.valLog.Head()

	// Parse complete entries out of the chunk.
	var entries []*valEntryRef
	pos := int64(0)
	for pos < int64(len(chunk)) {
		key, _, size, perr := ParseValueEntry(chunk[pos:])
		if perr != nil {
			break // straddling or not-yet-durable record: stop the round here
		}
		e := &valEntryRef{
			off:  head + pos,
			size: int64(size),
			key:  key,
			data: chunk[pos : pos+int64(size)],
			seg:  SegmentOf(HashKey(key), s.cfg.NumSegments),
		}
		entries = append(entries, e)
		pos += int64(size)
	}
	if len(entries) == 0 {
		return 0, nil
	}

	// Group by segment, preserving first-appearance order for determinism.
	groupIdx := make(map[uint32]int)
	var groups [][]*valEntryRef
	for _, e := range entries {
		gi, ok := groupIdx[e.seg]
		if !ok {
			gi = len(groups)
			groupIdx[e.seg] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], e)
	}

	s.runSubcompactions(p, len(groups), func(w runtime.Task, gi int) {
		s.compactValGroup(w, groups[gi])
	})

	// Advance the head past the contiguous prefix of finished entries.
	newHead := head
	for _, e := range entries {
		if !e.done {
			break
		}
		newHead = e.off + e.size
	}
	reclaimed := newHead - head
	if reclaimed > 0 {
		s.valLog.ReleaseTo(newHead)
		s.valGarbage -= reclaimed
		if s.valGarbage < 0 {
			s.valGarbage = 0
		}
		s.stats.ReclaimedBytes += reclaimed
	}
	s.prefetchNext(s.valLog, &s.vpf)
	if reclaimed > 0 {
		s.writeSuperblock(p)
	}
	return reclaimed, nil
}

// compactValGroup processes all chunk entries belonging to one segment.
func (s *Store) compactValGroup(p runtime.Task, group []*valEntryRef) {
	seg := group[0].seg
	var st OpStats
	s.segs.Lock(p, seg)
	defer s.segs.Unlock(seg)

	buckets, found, err := s.loadSegment(p, &st, seg)
	if err != nil {
		return
	}
	if !found {
		for _, e := range group {
			e.done = true // segment gone: every entry is dead
		}
		return
	}
	var relocated []*valEntryRef
	for _, e := range group {
		s.cpu(p, &st, s.cfg.Costs.CompactItem)
		bi, ii := s.findItem(p, &st, buckets, e.key)
		live := bi >= 0 && !buckets[bi].Items[ii].Deleted() &&
			buckets[bi].Items[ii].SSDID == s.cfg.DevID &&
			buckets[bi].Items[ii].ValOff == e.off
		if !live {
			e.done = true
			continue
		}
		newOff, ev, aerr := s.valLog.Append(e.data)
		if aerr != nil {
			break // out of space: stop; unfinished entries hold the head
		}
		st.Writes++
		if s.ssdWait(p, &st, ev) != nil {
			break
		}
		buckets[bi].Items[ii].ValOff = newOff
		s.valGarbage += e.size // the old copy is now dead
		s.stats.RelocatedItems++
		e.done = true
		relocated = append(relocated, e)
	}
	if len(relocated) > 0 {
		if err := s.writeSegment(p, &st, seg, buckets, true, nil); err != nil {
			// Segment write failed: the relocated copies are orphaned
			// (harmless garbage) and the old offsets stay authoritative, so
			// the head must not pass the relocated entries.
			for _, e := range relocated {
				e.done = false
				s.valGarbage -= e.size
			}
		}
	}
}

// keyArrayRef is one parsed segment array within a key-log chunk.
type keyArrayRef struct {
	off   int64
	seg   uint32
	chain int
	data  []byte
	done  bool
}

// CompactKeyLog runs one key-log compaction round: dead segment arrays are
// skipped, live ones are pruned of deletion markers and re-appended.
// Segments locked by in-flight PUT/DEL are skipped for this round (§3.3.1).
func (s *Store) CompactKeyLog(p runtime.Task) (int64, error) {
	if s.compacting {
		return 0, nil
	}
	s.compacting = true
	defer func() { s.compacting = false }()
	s.stats.KeyCompactions++
	if s.keyGarbage <= 0 {
		return 0, nil
	}

	var st OpStats
	bs := int64(s.cfg.BlockSize)
	want := s.cfg.CompactChunk / bs * bs
	chunk, err := s.fetchChunk(p, &st, s.keyLog, &s.kpf, want)
	if err != nil || chunk == nil {
		return 0, err
	}
	head := s.keyLog.Head()

	var arrays []*keyArrayRef
	pos := int64(0)
	for pos+bs <= int64(len(chunk)) {
		b0, perr := UnmarshalBucket(chunk[pos : pos+bs])
		if perr != nil {
			break
		}
		clen := int64(b0.ChainLen)
		if clen == 0 || pos+clen*bs > int64(len(chunk)) {
			break
		}
		arrays = append(arrays, &keyArrayRef{
			off:   head + pos,
			seg:   b0.SegID,
			chain: int(clen),
			data:  chunk[pos : pos+clen*bs],
		})
		pos += clen * bs
	}
	if len(arrays) == 0 {
		return 0, nil
	}

	s.runSubcompactions(p, len(arrays), func(w runtime.Task, ai int) {
		s.compactKeyArray(w, arrays[ai])
	})

	newHead := head
	for _, a := range arrays {
		if !a.done {
			break
		}
		newHead = a.off + int64(a.chain)*bs
	}
	reclaimed := newHead - head
	if reclaimed > 0 {
		s.keyLog.ReleaseTo(newHead)
		s.keyGarbage -= reclaimed
		if s.keyGarbage < 0 {
			s.keyGarbage = 0
		}
		s.stats.ReclaimedBytes += reclaimed
	}
	s.prefetchNext(s.keyLog, &s.kpf)
	if reclaimed > 0 {
		s.writeSuperblock(p)
	}
	return reclaimed, nil
}

// compactKeyArray decides one array's fate: dead, skipped (locked), or
// pruned and relocated.
func (s *Store) compactKeyArray(p runtime.Task, a *keyArrayRef) {
	var st OpStats
	off, _, ok := s.segs.Lookup(a.seg)
	_, remote := s.segs.Location(a.seg)
	if !ok || off != a.off || remote {
		a.done = true // stale array (or superseded by a swapped copy)
		return
	}
	if !s.segs.TryLock(a.seg) {
		return // busy with PUT/DEL or another compaction: skip this round
	}
	defer s.segs.Unlock(a.seg)

	buckets, err := s.parseSegment(a.data, a.chain)
	if err != nil {
		return
	}
	// Prune deletion markers and repack the survivors densely.
	var live []Item
	total := 0
	for _, b := range buckets {
		for _, it := range b.Items {
			total++
			if !it.Deleted() {
				live = append(live, it)
			}
		}
	}
	s.cpu(p, &st, int64(total)*s.cfg.Costs.CompactItem)
	if len(live) == 0 {
		s.segs.Clear(a.seg)
		a.done = true
		return
	}
	repacked := []*Bucket{{}}
	for _, it := range live {
		last := repacked[len(repacked)-1]
		if last.SpaceLeft(s.cfg.BlockSize) < it.Size() {
			last = &Bucket{}
			repacked = append(repacked, last)
		}
		last.Items = append(last.Items, it)
	}
	if err := s.writeSegment(p, &st, a.seg, repacked, true, nil); err != nil {
		return
	}
	a.done = true
}

// runSubcompactions fans n work units out over up to SubCompactions
// parallel procs (round-robin assignment) and waits for all of them.
func (s *Store) runSubcompactions(p runtime.Task, n int, work func(w runtime.Task, i int)) {
	workers := s.cfg.SubCompactions
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(p, i)
		}
		return
	}
	done := make([]runtime.Event, workers)
	for w := 0; w < workers; w++ {
		w := w
		ev := s.env.MakeEvent()
		done[w] = ev
		s.env.Spawn("subcompact", func(wp runtime.Task) {
			for i := w; i < n; i += workers {
				work(wp, i)
			}
			ev.Fire(nil)
		})
	}
	for _, ev := range done {
		p.Wait(ev)
	}
}

// PendingSwapSegments returns the segments with swapped-out values, sorted.
func (s *Store) PendingSwapSegments() []uint32 {
	segs := make([]uint32, 0, len(s.pendingSwaps))
	for seg := range s.pendingSwaps {
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs
}
