package core

import (
	"fmt"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

// newPeerStores builds two stores on separate devices wired as swap peers.
func newPeerStores(k sim.Runner) (home, helper *Store) {
	mk := func(devID uint8) *Store {
		dev := flashsim.NewMemDevice(k, 4<<20)
		return NewStore(Config{
			Env: k, Device: dev, DevID: devID, NumSegments: 32,
			KeyLogBytes: 1 << 20, ValLogBytes: 1 << 20, SwapLogBytes: 512 << 10,
		})
	}
	home, helper = mk(0), mk(1)
	home.AddPeer(helper)
	helper.AddPeer(home)
	return home, helper
}

func TestSwappedPutReadsFromPeer(t *testing.T) {
	k := sim.New()
	defer k.Close()
	home, helper := newPeerStores(k)
	runStore(k, func(p *sim.Proc) {
		if _, err := home.PutSwapped(p, []byte("k"), []byte("swapped-value"), helper); err != nil {
			t.Errorf("put swapped: %v", err)
			return
		}
		got, _, err := home.Get(p, []byte("k"))
		if err != nil || string(got) != "swapped-value" {
			t.Errorf("get = %q, %v", got, err)
		}
	})
	if home.Stats().SwappedPuts != 1 {
		t.Fatalf("swapped puts = %d", home.Stats().SwappedPuts)
	}
	if helper.SwapLog().Used() == 0 {
		t.Fatal("helper swap log empty")
	}
	if home.ValLog().Used() != 0 {
		t.Fatal("home value log should be empty for a swapped put")
	}
}

func TestMergebackRestoresHome(t *testing.T) {
	k := sim.New()
	defer k.Close()
	home, helper := newPeerStores(k)
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			key := []byte(fmt.Sprintf("k%02d", i))
			if _, err := home.PutSwapped(p, key, []byte(fmt.Sprintf("v%02d", i)), helper); err != nil {
				t.Errorf("put swapped: %v", err)
				return
			}
		}
		if home.SwapBacklog() == 0 {
			t.Error("no pending swaps recorded")
			return
		}
		n, err := home.Mergeback(p, 1000)
		if err != nil {
			t.Errorf("mergeback: %v", err)
			return
		}
		// At least the 20 values; swapped-out segment arrays are merged
		// back too (§3.6 full write swapping).
		if n < 20 {
			t.Errorf("merged %d, want >= 20", n)
		}
		// Values now come from the home value log.
		for i := 0; i < 20; i++ {
			key := []byte(fmt.Sprintf("k%02d", i))
			got, _, err := home.Get(p, key)
			if err != nil || string(got) != fmt.Sprintf("v%02d", i) {
				t.Errorf("get %s = %q, %v", key, got, err)
				return
			}
		}
	})
	if home.SwapBacklog() != 0 {
		t.Fatalf("backlog = %d after mergeback", home.SwapBacklog())
	}
	if helper.SwapLog().Used() != 0 {
		t.Fatalf("helper swap space not reclaimed: %d bytes", helper.SwapLog().Used())
	}
	if home.ValLog().Used() == 0 {
		t.Fatal("home value log still empty after mergeback")
	}
}

func TestSwapOverwriteReleasesPeerSpace(t *testing.T) {
	k := sim.New()
	defer k.Close()
	home, helper := newPeerStores(k)
	runStore(k, func(p *sim.Proc) {
		home.PutSwapped(p, []byte("k"), []byte("v1"), helper)
		used := helper.SwapLog().Used()
		if used == 0 {
			t.Error("swap log empty")
			return
		}
		// Overwriting at home invalidates the swapped copy; the peer must
		// reclaim the space.
		if _, err := home.Put(p, []byte("k"), []byte("v2")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		if helper.SwapLog().Used() != 0 {
			t.Errorf("peer swap space not reclaimed after overwrite: %d", helper.SwapLog().Used())
		}
		got, _, err := home.Get(p, []byte("k"))
		if err != nil || string(got) != "v2" {
			t.Errorf("get = %q, %v", got, err)
		}
	})
}

func TestSwapDeleteReleasesPeerSpace(t *testing.T) {
	k := sim.New()
	defer k.Close()
	home, helper := newPeerStores(k)
	runStore(k, func(p *sim.Proc) {
		home.PutSwapped(p, []byte("k"), []byte("v1"), helper)
		home.Del(p, []byte("k"))
		if helper.SwapLog().Used() != 0 {
			t.Errorf("peer swap space not reclaimed after delete: %d", helper.SwapLog().Used())
		}
	})
}

func TestValueCompactionTriggersMergeback(t *testing.T) {
	k := sim.New()
	defer k.Close()
	home, helper := newPeerStores(k)
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			home.PutSwapped(p, []byte(fmt.Sprintf("k%d", i)), []byte("val"), helper)
		}
		// Churn some home values too, then compact.
		for i := 0; i < 30; i++ {
			home.Put(p, []byte("home"), []byte(fmt.Sprintf("home-val-%d", i)))
		}
		if _, err := home.CompactValueLog(p); err != nil {
			t.Errorf("compact: %v", err)
		}
	})
	if home.Stats().MergedSwaps < 10 {
		t.Fatalf("merged swaps = %d, want >= 10 (values plus segment arrays)", home.Stats().MergedSwaps)
	}
	if home.SwapBacklog() != 0 {
		t.Fatalf("backlog = %d", home.SwapBacklog())
	}
}

func TestInterleavedSwapEntriesFromTwoHomes(t *testing.T) {
	// Two homes swap into one helper; reclamation must handle interleaving.
	k := sim.New()
	defer k.Close()
	mk := func(devID uint8) *Store {
		dev := flashsim.NewMemDevice(k, 4<<20)
		return NewStore(Config{
			Env: k, Device: dev, DevID: devID, NumSegments: 32,
			KeyLogBytes: 1 << 20, ValLogBytes: 1 << 20, SwapLogBytes: 512 << 10,
		})
	}
	a, b, helper := mk(0), mk(1), mk(2)
	for _, s := range []*Store{a, b, helper} {
		s.AddPeer(a)
		s.AddPeer(b)
		s.AddPeer(helper)
	}
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			a.PutSwapped(p, []byte(fmt.Sprintf("a%d", i)), []byte("va"), helper)
			b.PutSwapped(p, []byte(fmt.Sprintf("b%d", i)), []byte("vb"), helper)
		}
		// Merge b first: head entries belong to a, so space frees only
		// after a merges too.
		b.Mergeback(p, 1000)
		if helper.SwapLog().Used() == 0 {
			t.Error("helper reclaimed too early")
			return
		}
		a.Mergeback(p, 1000)
		if helper.SwapLog().Used() != 0 {
			t.Errorf("helper swap not fully reclaimed: %d", helper.SwapLog().Used())
		}
		for i := 0; i < 10; i++ {
			if got, _, err := a.Get(p, []byte(fmt.Sprintf("a%d", i))); err != nil || string(got) != "va" {
				t.Errorf("a%d: %q, %v", i, got, err)
			}
			if got, _, err := b.Get(p, []byte(fmt.Sprintf("b%d", i))); err != nil || string(got) != "vb" {
				t.Errorf("b%d: %q, %v", i, got, err)
			}
		}
	})
}

func TestFullSwapSegmentLandsOnHelper(t *testing.T) {
	// §3.6 full write swapping at the store level: after PutSwapped, the
	// segment array itself lives in the helper's swap region, and
	// merge-back brings it home.
	k := sim.New()
	defer k.Close()
	home, helper := newPeerStores(k)
	runStore(k, func(p *sim.Proc) {
		if _, err := home.PutSwapped(p, []byte("k"), []byte("v"), helper); err != nil {
			t.Errorf("put swapped: %v", err)
			return
		}
		// Home's key log untouched; helper's swap region holds both the
		// value entry and the segment array.
		if home.KeyLog().Used() != 0 {
			t.Errorf("home key log used %d after full swap", home.KeyLog().Used())
		}
		if home.ValLog().Used() != 0 {
			t.Errorf("home value log used %d after full swap", home.ValLog().Used())
		}
		if helper.SwapLog().Used() == 0 {
			t.Error("helper swap region empty")
		}
		// Reads work against the remote segment.
		if v, _, err := home.Get(p, []byte("k")); err != nil || string(v) != "v" {
			t.Errorf("get: %q, %v", v, err)
		}
		// Merge-back relocates both and frees the helper.
		if _, err := home.Mergeback(p, 100); err != nil {
			t.Errorf("mergeback: %v", err)
			return
		}
		if home.KeyLog().Used() == 0 || home.ValLog().Used() == 0 {
			t.Error("merge-back did not bring data home")
		}
		if helper.SwapLog().Used() != 0 {
			t.Errorf("helper swap not reclaimed: %d", helper.SwapLog().Used())
		}
		if v, _, err := home.Get(p, []byte("k")); err != nil || string(v) != "v" {
			t.Errorf("get after merge-back: %q, %v", v, err)
		}
	})
}
