package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
)

// The runtime-seam acceptance test: the same Store code, driven with the
// same operation sequence, must leave identical KV contents whether it runs
// on the deterministic sim kernel or on real goroutines.

func equivStore(env runtime.Env) *Store {
	return NewStore(Config{
		Env:         env,
		Device:      flashsim.NewMemDevice(env, 16<<20),
		NumSegments: 64,
		KeyLogBytes: 4 << 20,
		ValLogBytes: 8 << 20,
	})
}

type kvOp struct {
	kind byte // 'P', 'D', 'G'
	key  string
	val  string
}

// equivOps builds a fixed mixed sequence: puts, overwrites, deletes, gets.
func equivOps(tag string, n int) []kvOp {
	ops := make([]kvOp, 0, n)
	state := uint64(12345)
	next := func(mod uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % mod
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%s-key-%03d", tag, next(40))
		switch next(10) {
		case 0, 1, 2, 3, 4, 5:
			ops = append(ops, kvOp{kind: 'P', key: key, val: fmt.Sprintf("val-%s-%d", key, i)})
		case 6, 7:
			ops = append(ops, kvOp{kind: 'G', key: key})
		default:
			ops = append(ops, kvOp{kind: 'D', key: key})
		}
	}
	return ops
}

// applyOps runs the sequence on a task, recording each GET observation.
func applyOps(t *testing.T, p runtime.Task, s *Store, ops []kvOp) []string {
	t.Helper()
	var gets []string
	for _, op := range ops {
		switch op.kind {
		case 'P':
			if _, err := s.Put(p, []byte(op.key), []byte(op.val)); err != nil {
				t.Errorf("put %s: %v", op.key, err)
			}
		case 'D':
			if _, err := s.Del(p, []byte(op.key)); err != nil && err != ErrNotFound {
				t.Errorf("del %s: %v", op.key, err)
			}
		case 'G':
			v, _, err := s.Get(p, []byte(op.key))
			switch err {
			case nil:
				gets = append(gets, op.key+"="+string(v))
			case ErrNotFound:
				gets = append(gets, op.key+"=<missing>")
			default:
				t.Errorf("get %s: %v", op.key, err)
			}
		}
	}
	return gets
}

// dumpContents collects the full KV contents, sorted by key.
func dumpContents(t *testing.T, p runtime.Task, s *Store) []string {
	t.Helper()
	var kv []string
	if err := s.Range(p, func(key, val []byte) bool {
		kv = append(kv, string(key)+"="+string(val))
		return true
	}); err != nil {
		t.Errorf("range: %v", err)
	}
	sort.Strings(kv)
	return kv
}

func TestStoreEquivalenceSimVsWallclock(t *testing.T) {
	ops := equivOps("eq", 400)

	// Sim backend: one proc on a kernel.
	var simGets, simKV []string
	k := sim.New()
	ss := equivStore(k)
	k.Go("ops", func(p *sim.Proc) {
		simGets = applyOps(t, p, ss, ops)
		simKV = dumpContents(t, p, ss)
	})
	k.Run()
	k.Close()

	// Wall-clock backend: one task on real goroutines.
	var wcGets, wcKV []string
	env := wallclock.New()
	ws := equivStore(env)
	env.Spawn("ops", func(p runtime.Task) {
		wcGets = applyOps(t, p, ws, ops)
		wcKV = dumpContents(t, p, ws)
	})
	env.Wait()

	if len(simKV) == 0 {
		t.Fatal("sim run left an empty store; sequence is not exercising anything")
	}
	if fmt.Sprint(simGets) != fmt.Sprint(wcGets) {
		t.Errorf("GET observations diverge:\nsim: %v\nwc:  %v", simGets, wcGets)
	}
	if fmt.Sprint(simKV) != fmt.Sprint(wcKV) {
		t.Errorf("final contents diverge:\nsim: %v\nwc:  %v", simKV, wcKV)
	}
}

// TestWallclockConcurrentClients hammers one store from 8 concurrent client
// tasks on disjoint keyspaces. Under -race this is the proof that the
// wallclock backend's execution contract makes the unlocked store safe; the
// per-client sequences are deterministic, so final contents are checkable
// even though the interleaving is not.
func TestWallclockConcurrentClients(t *testing.T) {
	const clients = 8
	env := wallclock.New()
	s := equivStore(env)

	perClient := make([][]kvOp, clients)
	for c := range perClient {
		perClient[c] = equivOps(fmt.Sprintf("c%d", c), 150)
	}

	for c := 0; c < clients; c++ {
		c := c
		env.Spawn("client", func(p runtime.Task) {
			applyOps(t, p, s, perClient[c])
		})
	}
	env.Wait()

	// Expected contents: replay each client's sequence against a plain map
	// (keyspaces are disjoint, so per-key order is each client's own).
	want := map[string]string{}
	for _, ops := range perClient {
		for _, op := range ops {
			switch op.kind {
			case 'P':
				want[op.key] = op.val
			case 'D':
				delete(want, op.key)
			}
		}
	}
	var wantKV []string
	for k, v := range want {
		wantKV = append(wantKV, k+"="+v)
	}
	sort.Strings(wantKV)

	// Collect on a fresh task after all clients finished.
	var gotKV []string
	env.Spawn("dump", func(p runtime.Task) {
		gotKV = dumpContents(t, p, s)
	})
	env.Wait()

	if !equalStrings(gotKV, wantKV) {
		t.Errorf("contents after %d concurrent clients diverge from replay:\ngot %d entries, want %d",
			clients, len(gotKV), len(wantKV))
		for i := 0; i < len(gotKV) && i < len(wantKV); i++ {
			if gotKV[i] != wantKV[i] {
				t.Errorf("first divergence: got %q want %q", gotKV[i], wantKV[i])
				break
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWallclockRecoveryRoundTrip checks the superblock flush/recover path on
// the wall-clock backend against a FileDevice, mirroring what leedctl serve
// does between invocations.
func TestWallclockRecoveryRoundTrip(t *testing.T) {
	img := t.TempDir() + "/store.img"
	open := func(env runtime.Env) (*Store, *flashsim.FileDevice) {
		dev, err := flashsim.OpenFileDevice(env, img, 16<<20)
		if err != nil {
			t.Fatalf("open image: %v", err)
		}
		return NewStore(Config{
			Env:         env,
			Device:      dev,
			NumSegments: 64,
			KeyLogBytes: 4 << 20,
			ValLogBytes: 8 << 20,
		}), dev
	}

	env := wallclock.New()
	s, dev := open(env)
	env.Spawn("writer", func(p runtime.Task) {
		if _, err := s.Recover(p); err != nil {
			t.Errorf("recover empty: %v", err)
		}
		for i := 0; i < 50; i++ {
			key := []byte(fmt.Sprintf("persist-%02d", i))
			if _, err := s.Put(p, key, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		if err := s.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	env.Wait()
	if err := dev.Close(); err != nil {
		t.Fatalf("close image: %v", err)
	}

	env2 := wallclock.New()
	s2, dev2 := open(env2)
	env2.Spawn("reader", func(p runtime.Task) {
		n, err := s2.Recover(p)
		if err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if n == 0 {
			t.Error("recover found no segments")
		}
		for i := 0; i < 50; i++ {
			key := []byte(fmt.Sprintf("persist-%02d", i))
			v, _, err := s2.Get(p, key)
			if err != nil {
				t.Errorf("get %s after recover: %v", key, err)
				continue
			}
			if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 32)) {
				t.Errorf("value mismatch for %s", key)
			}
		}
	})
	env2.Wait()
	if err := dev2.Close(); err != nil {
		t.Fatalf("close image 2: %v", err)
	}
}

// TestStoreEquivalenceAsyncDevice repeats the sim-vs-wallclock equivalence
// check over the submission-queue device: same op sequence, one run per
// backend, each on its own image file — identical GET observations and
// final contents. This pins down that doorbell batching, coalescing, and
// offloaded completion do not change what the store does, only when.
func TestStoreEquivalenceAsyncDevice(t *testing.T) {
	ops := equivOps("aeq", 400)
	dir := t.TempDir()

	asyncStore := func(env runtime.Env, img string) (*Store, *flashsim.AsyncFileDevice) {
		dev, err := flashsim.OpenAsyncFileDevice(env, img, 16<<20, flashsim.AsyncOptions{})
		if err != nil {
			t.Fatalf("open image: %v", err)
		}
		return NewStore(Config{
			Env:         env,
			Device:      dev,
			NumSegments: 64,
			KeyLogBytes: 4 << 20,
			ValLogBytes: 8 << 20,
		}), dev
	}

	var simGets, simKV []string
	k := sim.New()
	ss, sdev := asyncStore(k, dir+"/sim.img")
	k.Go("ops", func(p *sim.Proc) {
		simGets = applyOps(t, p, ss, ops)
		simKV = dumpContents(t, p, ss)
	})
	k.Run()
	k.Close()
	if err := sdev.Close(); err != nil {
		t.Fatal(err)
	}

	var wcGets, wcKV []string
	env := wallclock.New()
	ws, wdev := asyncStore(env, dir+"/wc.img")
	env.Spawn("ops", func(p runtime.Task) {
		wcGets = applyOps(t, p, ws, ops)
		wcKV = dumpContents(t, p, ws)
	})
	env.Wait()
	if err := wdev.Close(); err != nil {
		t.Fatal(err)
	}

	if len(simKV) == 0 {
		t.Fatal("sim run left an empty store; sequence is not exercising anything")
	}
	if fmt.Sprint(simGets) != fmt.Sprint(wcGets) {
		t.Errorf("GET observations diverge:\nsim: %v\nwc:  %v", simGets, wcGets)
	}
	if fmt.Sprint(simKV) != fmt.Sprint(wcKV) {
		t.Errorf("final contents diverge:\nsim: %v\nwc:  %v", simKV, wcKV)
	}
	if sdev.Stats().Batches == 0 {
		t.Error("sim run never used the submission queue")
	}
}
