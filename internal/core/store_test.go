package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

// newTestStore builds a small store on a MemDevice.
func newTestStore(k sim.Runner) *Store {
	dev := flashsim.NewMemDevice(k, 4<<20)
	return NewStore(Config{
		Env:          k,
		Device:       dev,
		DevID:        0,
		NumSegments:  64,
		KeyLogBytes:  1 << 20,
		ValLogBytes:  2 << 20,
		SwapLogBytes: 256 << 10,
	})
}

// runStore runs fn in a proc and drives the kernel to completion.
func runStore(k sim.Runner, fn func(p *sim.Proc)) {
	k.Go("test", fn)
	k.Run()
}

func TestStorePutGet(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		if _, err := s.Put(p, []byte("key1"), []byte("value1")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		got, _, err := s.Get(p, []byte("key1"))
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if string(got) != "value1" {
			t.Errorf("got %q", got)
		}
	})
	if s.Objects() != 1 {
		t.Fatalf("objects = %d", s.Objects())
	}
}

func TestStoreGetMissing(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		if _, _, err := s.Get(p, []byte("nope")); err != ErrNotFound {
			t.Errorf("err = %v", err)
		}
	})
}

func TestStoreOverwrite(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		s.Put(p, []byte("k"), []byte("v1"))
		s.Put(p, []byte("k"), []byte("v2-longer"))
		got, _, err := s.Get(p, []byte("k"))
		if err != nil || string(got) != "v2-longer" {
			t.Errorf("got %q, %v", got, err)
		}
	})
	if s.Objects() != 1 {
		t.Fatalf("objects = %d after overwrite", s.Objects())
	}
	if s.ValGarbage() == 0 {
		t.Fatal("overwrite produced no value garbage")
	}
}

func TestStoreDelete(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		s.Put(p, []byte("k"), []byte("v"))
		if _, err := s.Del(p, []byte("k")); err != nil {
			t.Errorf("del: %v", err)
		}
		if _, _, err := s.Get(p, []byte("k")); err != ErrNotFound {
			t.Errorf("get after del: %v", err)
		}
		if _, err := s.Del(p, []byte("k")); err != ErrNotFound {
			t.Errorf("double del: %v", err)
		}
		if _, err := s.Del(p, []byte("never")); err != ErrNotFound {
			t.Errorf("del missing: %v", err)
		}
	})
	if s.Objects() != 0 {
		t.Fatalf("objects = %d", s.Objects())
	}
}

func TestStoreReinsertAfterDelete(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		s.Put(p, []byte("k"), []byte("v1"))
		s.Del(p, []byte("k"))
		s.Put(p, []byte("k"), []byte("v2"))
		got, _, err := s.Get(p, []byte("k"))
		if err != nil || string(got) != "v2" {
			t.Errorf("got %q, %v", got, err)
		}
	})
	if s.Objects() != 1 {
		t.Fatalf("objects = %d", s.Objects())
	}
}

func TestStoreEmptyValueRejected(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		if _, err := s.Put(p, []byte("k"), nil); err == nil {
			t.Error("empty value accepted")
		}
	})
}

func TestStoreChainGrowth(t *testing.T) {
	// Force many keys into one segment (NumSegments=1) until chains grow.
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s := NewStore(Config{
		Env: k, Device: dev, NumSegments: 1,
		KeyLogBytes: 1 << 20, ValLogBytes: 1 << 20,
	})
	runStore(k, func(p *sim.Proc) {
		// ~15 items fit in one 512B bucket with these key sizes.
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("key-%08d", i))
			if _, err := s.Put(p, key, []byte("val")); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		_, chainLen, ok := s.segs.Lookup(0)
		if !ok || chainLen < 2 {
			t.Errorf("chain did not grow: len=%d", chainLen)
		}
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("key-%08d", i))
			got, _, err := s.Get(p, key)
			if err != nil || string(got) != "val" {
				t.Errorf("get %d: %q, %v", i, got, err)
				return
			}
		}
	})
}

func TestStoreSegmentFull(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	s := NewStore(Config{
		Env: k, Device: dev, NumSegments: 1, MaxChain: 1,
		KeyLogBytes: 1 << 20, ValLogBytes: 1 << 20,
	})
	runStore(k, func(p *sim.Proc) {
		var sawFull bool
		for i := 0; i < 60; i++ {
			key := []byte(fmt.Sprintf("key-%08d", i))
			_, err := s.Put(p, key, []byte("v"))
			if err == ErrSegmentFull {
				sawFull = true
				break
			}
			if err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		if !sawFull {
			t.Error("never hit ErrSegmentFull with MaxChain=1")
		}
	})
}

func TestStoreNVMeAccessCounts(t *testing.T) {
	// The paper's §3.3: GET/PUT/DEL issue 2/3/2 NVMe accesses.
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	runStore(k, func(p *sim.Proc) {
		st, err := s.Put(p, []byte("k"), []byte("v"))
		if err != nil {
			t.Errorf("put: %v", err)
			return
		}
		// First PUT has no segment to read: 2 accesses.
		if st.Reads+st.Writes != 2 {
			t.Errorf("first PUT accesses = %d", st.Reads+st.Writes)
		}
		st, _ = s.Put(p, []byte("k"), []byte("v2"))
		if st.Reads != 1 || st.Writes != 2 {
			t.Errorf("PUT accesses = %d reads, %d writes (want 1, 2)", st.Reads, st.Writes)
		}
		_, st2, _ := s.Get(p, []byte("k"))
		if st2.Reads != 2 || st2.Writes != 0 {
			t.Errorf("GET accesses = %d reads, %d writes (want 2, 0)", st2.Reads, st2.Writes)
		}
		st, _ = s.Del(p, []byte("k"))
		if st.Reads != 1 || st.Writes != 1 {
			t.Errorf("DEL accesses = %d reads, %d writes (want 1, 1)", st.Reads, st.Writes)
		}
	})
}

func TestStorePutOverlapsValueWriteAndSegmentRead(t *testing.T) {
	// On a real (latency) device, an overwrite PUT should take ~2 serial
	// access times, not 3, because the value write overlaps the segment
	// read (§3.3, Figure 11: PUT adds only ~10.5us over GET).
	k := sim.New()
	defer k.Close()
	spec := flashsim.SamsungDCT983(16 << 20)
	spec.Jitter = 0
	dev := flashsim.NewSSD(k, spec)
	s := NewStore(Config{
		Env: k, Device: dev, NumSegments: 16,
		KeyLogBytes: 4 << 20, ValLogBytes: 8 << 20,
	})
	var putLat, getLat sim.Time
	runStore(k, func(p *sim.Proc) {
		s.Put(p, []byte("k"), []byte("v0"))
		t0 := p.Now()
		s.Put(p, []byte("k"), []byte("v1"))
		putLat = p.Now() - t0
		t0 = p.Now()
		s.Get(p, []byte("k"))
		getLat = p.Now() - t0
	})
	// PUT = max(read, write) + write; GET = read + read. With read ~56us
	// and write ~22us: PUT ~78-85us, GET ~112us. PUT must not be ~3 serial
	// accesses (~134us+).
	if putLat > getLat {
		t.Fatalf("PUT (%v) slower than GET (%v): overlap missing", putLat, getLat)
	}
}

func TestStoreManyKeysModelCheck(t *testing.T) {
	// Property-style test: random CRUD against a model map.
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	rng := rand.New(rand.NewSource(7))
	model := map[string]string{}
	runStore(k, func(p *sim.Proc) {
		for i := 0; i < 1500; i++ {
			key := fmt.Sprintf("key-%04d", rng.Intn(300))
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // put
				val := fmt.Sprintf("val-%d-%d", i, rng.Int63())
				if _, err := s.Put(p, []byte(key), []byte(val)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				model[key] = val
			case 6, 7: // del
				_, err := s.Del(p, []byte(key))
				_, existed := model[key]
				if existed && err != nil {
					t.Errorf("del existing: %v", err)
					return
				}
				if !existed && err != ErrNotFound {
					t.Errorf("del missing: %v", err)
					return
				}
				delete(model, key)
			default: // get
				got, _, err := s.Get(p, []byte(key))
				want, existed := model[key]
				if existed && (err != nil || string(got) != want) {
					t.Errorf("get %q = %q, %v; want %q", key, got, err, want)
					return
				}
				if !existed && err != ErrNotFound {
					t.Errorf("get missing %q: %v", key, err)
					return
				}
			}
		}
		// Full verification pass.
		for key, want := range model {
			got, _, err := s.Get(p, []byte(key))
			if err != nil || string(got) != want {
				t.Errorf("final get %q = %q, %v; want %q", key, got, err, want)
				return
			}
		}
	})
	if int(s.Objects()) != len(model) {
		t.Fatalf("objects = %d, model = %d", s.Objects(), len(model))
	}
}

func TestStoreConcurrentSameSegmentSerialized(t *testing.T) {
	// Two PUTs to the same segment must serialize via the lock bit and both
	// land correctly.
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewSSD(k, flashsim.SamsungDCT983(16<<20))
	s := NewStore(Config{
		Env: k, Device: dev, NumSegments: 1,
		KeyLogBytes: 4 << 20, ValLogBytes: 8 << 20,
	})
	for i := 0; i < 8; i++ {
		i := i
		k.Go("w", func(p *sim.Proc) {
			key := []byte(fmt.Sprintf("key%d", i))
			if _, err := s.Put(p, key, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
				t.Errorf("put: %v", err)
			}
		})
	}
	k.Run()
	k.Go("verify", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			key := []byte(fmt.Sprintf("key%d", i))
			got, _, err := s.Get(p, key)
			if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 64)) {
				t.Errorf("get %d: %v", i, err)
			}
		}
	})
	k.Run()
}

func TestStoreDRAMFootprint(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k)
	if s.DRAMBytes() != 64*segEntryDRAMBytes {
		t.Fatalf("DRAM = %d", s.DRAMBytes())
	}
}

func TestPlanPartitionIndexDensity(t *testing.T) {
	// C1: indexing must cost well under 0.5 bytes of DRAM per object even
	// for 256B objects.
	g := PlanPartition(960<<30, 16, 256, PlanOpts{})
	if g.DRAMPerObject > 0.5 {
		t.Fatalf("DRAM per object = %.3f bytes", g.DRAMPerObject)
	}
	if g.ObjectBudget < 1e9 {
		t.Fatalf("object budget = %d for a 960GB partition", g.ObjectBudget)
	}
	// Logs must fit the partition.
	total := g.KeyLogBytes + g.ValLogBytes + g.SwapLogBytes
	if total > 960<<30 {
		t.Fatalf("planned logs (%d) exceed partition", total)
	}
}

func TestMaxCapacityFraction(t *testing.T) {
	// Table 3: LEED supports ~95%+ of the raw flash for both object sizes.
	for _, tc := range []struct {
		valLen int
		min    float64
	}{{256, 0.78}, {1024, 0.85}} {
		f := MaxCapacityFraction(960<<30, 16, tc.valLen)
		if f < tc.min || f > 1.0 {
			t.Errorf("capacity fraction for %dB = %.3f", tc.valLen, f)
		}
	}
}
