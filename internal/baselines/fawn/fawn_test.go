package fawn

import (
	"fmt"
	"math/rand"
	"testing"

	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/sim"
)

func newTestDS(k sim.Runner) *DS {
	dev := flashsim.NewMemDevice(k, 4<<20)
	return New(Config{Kernel: k, Device: dev, LogBytes: 2 << 20})
}

func run(k sim.Runner, fn func(p *sim.Proc)) {
	k.Go("test", fn)
	k.Run()
}

func TestFawnCRUD(t *testing.T) {
	k := sim.New()
	defer k.Close()
	d := newTestDS(k)
	run(k, func(p *sim.Proc) {
		if err := d.Put(p, []byte("k"), []byte("v1")); err != nil {
			t.Errorf("put: %v", err)
		}
		v, err := d.Get(p, []byte("k"))
		if err != nil || string(v) != "v1" {
			t.Errorf("get = %q, %v", v, err)
		}
		d.Put(p, []byte("k"), []byte("v2"))
		v, _ = d.Get(p, []byte("k"))
		if string(v) != "v2" {
			t.Errorf("overwrite lost: %q", v)
		}
		if err := d.Del(p, []byte("k")); err != nil {
			t.Errorf("del: %v", err)
		}
		if _, err := d.Get(p, []byte("k")); err != core.ErrNotFound {
			t.Errorf("get after del: %v", err)
		}
		if err := d.Del(p, []byte("k")); err != core.ErrNotFound {
			t.Errorf("double del: %v", err)
		}
	})
}

func TestFawnSingleAccessPerOp(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	d := New(Config{Kernel: k, Device: dev, LogBytes: 2 << 20})
	run(k, func(p *sim.Proc) {
		d.Put(p, []byte("k"), []byte("v"))
		w := dev.Stats().Writes
		r := dev.Stats().Reads
		if w != 1 || r != 0 {
			t.Errorf("PUT did %d writes, %d reads; want 1, 0", w, r)
		}
		d.Get(p, []byte("k"))
		if dev.Stats().Reads != 1 {
			t.Errorf("GET did %d reads; want 1", dev.Stats().Reads)
		}
	})
}

func TestFawnDRAMBudgetLimitsObjects(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 4<<20)
	d := New(Config{Kernel: k, Device: dev, LogBytes: 2 << 20, DRAMBudget: 10 * IndexBytesPerObject})
	run(k, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := d.Put(p, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}
		if err := d.Put(p, []byte("k-over"), []byte("v")); err != ErrFull {
			t.Errorf("11th insert: %v, want ErrFull", err)
		}
		// Overwrites of existing keys still work.
		if err := d.Put(p, []byte("k3"), []byte("v2")); err != nil {
			t.Errorf("overwrite under budget: %v", err)
		}
	})
	if d.Stats().IndexRejects != 1 {
		t.Fatalf("rejects = %d", d.Stats().IndexRejects)
	}
}

func TestFawnCompactionSustainsChurn(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 8<<20)
	d := New(Config{Kernel: k, Device: dev, LogBytes: 128 << 10})
	run(k, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(1))
		model := map[string]string{}
		for i := 0; i < 12000; i++ {
			key := fmt.Sprintf("k%03d", rng.Intn(100))
			val := fmt.Sprintf("value-%08d", i)
			if err := d.Put(p, []byte(key), []byte(val)); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			model[key] = val
			if d.NeedsCompaction() {
				if _, err := d.Compact(p); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
		for key, want := range model {
			v, err := d.Get(p, []byte(key))
			if err != nil || string(v) != want {
				t.Errorf("get %q = %q, %v", key, v, err)
				return
			}
		}
	})
	if d.Stats().Compactions == 0 {
		t.Fatal("compaction never ran")
	}
}

func TestFawnMaxCapacityFraction(t *testing.T) {
	// Table 3: FAWN on a Stingray (8GB DRAM, 3.84TB flash) uses only
	// ~7.7% for 256B objects and ~24.1% for 1KB.
	flash := int64(4) * 960 << 30
	dram := int64(8) << 30
	f256 := MaxCapacityFraction(flash, dram, 16, 256)
	f1k := MaxCapacityFraction(flash, dram, 16, 1024)
	if f256 < 0.05 || f256 > 0.12 {
		t.Fatalf("256B capacity fraction = %.3f, want ~0.077", f256)
	}
	if f1k < 0.18 || f1k > 0.32 {
		t.Fatalf("1KB capacity fraction = %.3f, want ~0.24", f1k)
	}
	if f1k <= f256 {
		t.Fatal("capacity fraction must grow with object size")
	}
}

func TestFawnLatencyOnRealDevice(t *testing.T) {
	k := sim.New()
	defer k.Close()
	spec := flashsim.SamsungDCT983(16 << 20)
	spec.Jitter = 0
	dev := flashsim.NewSSD(k, spec)
	d := New(Config{Kernel: k, Device: dev, LogBytes: 8 << 20})
	var getLat sim.Time
	run(k, func(p *sim.Proc) {
		d.Put(p, []byte("k"), make([]byte, 256))
		t0 := p.Now()
		d.Get(p, []byte("k"))
		getLat = p.Now() - t0
	})
	// One device read: ~52-60us — about half of LEED's two-access GET.
	if getLat < 40*sim.Microsecond || getLat > 80*sim.Microsecond {
		t.Fatalf("FAWN GET latency = %v, want ~55us", getLat)
	}
}
