// Package fawn reimplements the FAWN-DS datastore (Andersen et al.,
// SOSP'09) as the paper's embedded-node baseline: an append-only log on
// flash with a 6-byte-per-object DRAM hash index, one device access per
// request, and a single-threaded semi-streaming compactor. It is evaluated
// both on Raspberry Pi nodes (Embedded-FAWN) and ported onto the Stingray
// (FAWN-JBOF, Table 3), where its DRAM-resident index limits usable
// capacity to 7.7%/24.1% for 256B/1KB objects.
package fawn

import (
	"encoding/binary"
	"errors"
	"fmt"

	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/sim"
)

// IndexBytesPerObject is FAWN's DRAM cost per object: a 15-bit key
// fragment, a valid bit, and a 4-byte log pointer (§2.3).
const IndexBytesPerObject = 6

// ErrFull reports that the log has no reclaimable space left.
var ErrFull = errors.New("fawn: datastore full")

const (
	entryHdr   = 8 // magic u16 | klen u8 | flags u8 | vlen u32
	entryMagic = 0xFA3A
	flagDel    = 1
)

// Costs are the per-phase CPU cycle charges.
type Costs struct {
	Lookup  int64 // hash + index probe
	Append  int64 // log bookkeeping
	Compact int64 // per entry examined
}

// DefaultCosts returns FAWN-DS's calibrated cost model.
func DefaultCosts() Costs {
	return Costs{Lookup: 1200, Append: 900, Compact: 200}
}

// Config wires one FAWN-DS instance.
type Config struct {
	Kernel sim.Runner
	Device flashsim.Device
	Exec   core.Exec
	Costs  Costs

	RegionOff int64
	LogBytes  int64

	// DRAMBudget caps the index size; at 6 bytes per object this is what
	// bounds FAWN's usable capacity on a JBOF (C1).
	DRAMBudget int64

	// Obs receives the store's counter series (leed_fawn_*), so baseline
	// runs report through the same registry as LEED. May be nil.
	Obs *obs.Registry
	// ObsLabel distinguishes virtual-node stores in the registry.
	ObsLabel string
}

// Stats are cumulative counters.
type Stats struct {
	Gets, Puts, Dels int64
	NotFounds        int64
	Compactions      int64
	ReclaimedBytes   int64
	IndexRejects     int64 // puts rejected by the DRAM budget
}

// DS is one FAWN datastore.
type DS struct {
	cfg   Config
	k     sim.Runner
	log   *core.CircLog
	index map[string]indexEntry
	live  int64 // live bytes in the log
	// mu serializes operations: a FAWN-DS virtual node is single-threaded
	// (§2.2.2), which is precisely the execution model LEED's asynchronous
	// framework improves on.
	mu    sim.Mutex
	stats Stats
	o     *dsObs
}

type indexEntry struct {
	off  int64
	size int64
}

// dsObs mirrors Stats into registry counters. Always constructed (a nil
// registry hands back working unregistered counters).
type dsObs struct {
	gets, puts, dels *obs.Counter
	notFounds        *obs.Counter
	compactions      *obs.Counter
	reclaimedBytes   *obs.Counter
	indexRejects     *obs.Counter
}

func newDSObs(reg *obs.Registry, label string) *dsObs {
	c := func(name string) *obs.Counter { return reg.Counter(name, "ds", label) }
	return &dsObs{
		gets:           c("leed_fawn_gets_total"),
		puts:           c("leed_fawn_puts_total"),
		dels:           c("leed_fawn_dels_total"),
		notFounds:      c("leed_fawn_not_found_total"),
		compactions:    c("leed_fawn_compactions_total"),
		reclaimedBytes: c("leed_fawn_reclaimed_bytes_total"),
		indexRejects:   c("leed_fawn_index_rejects_total"),
	}
}

// New creates a datastore over its device region.
func New(cfg Config) *DS {
	if cfg.Exec == nil {
		cfg.Exec = core.NopExec{}
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	return &DS{
		cfg:   cfg,
		k:     cfg.Kernel,
		log:   core.NewCircLog(cfg.Kernel, cfg.Device, cfg.RegionOff, cfg.LogBytes),
		index: make(map[string]indexEntry),
		o:     newDSObs(cfg.Obs, cfg.ObsLabel),
	}
}

// Stats returns cumulative counters.
func (d *DS) Stats() Stats { return d.stats }

// Objects returns the live object count.
func (d *DS) Objects() int64 { return int64(len(d.index)) }

// IndexDRAMBytes returns the modeled index footprint.
func (d *DS) IndexDRAMBytes() int64 { return int64(len(d.index)) * IndexBytesPerObject }

// MaxObjects returns how many objects the DRAM budget can index.
func (d *DS) MaxObjects() int64 {
	if d.cfg.DRAMBudget == 0 {
		return 1 << 62
	}
	return d.cfg.DRAMBudget / IndexBytesPerObject
}

func entrySize(keyLen, valLen int) int64 { return int64(entryHdr + keyLen + valLen) }

func marshalEntry(key, val []byte, del bool) []byte {
	buf := make([]byte, entrySize(len(key), len(val)))
	binary.LittleEndian.PutUint16(buf[0:], entryMagic)
	buf[2] = uint8(len(key))
	if del {
		buf[3] = flagDel
	}
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(val)))
	copy(buf[entryHdr:], key)
	copy(buf[entryHdr+len(key):], val)
	return buf
}

func parseEntry(src []byte) (key, val []byte, del bool, size int64, err error) {
	if len(src) < entryHdr || binary.LittleEndian.Uint16(src[0:]) != entryMagic {
		return nil, nil, false, 0, fmt.Errorf("fawn: bad entry")
	}
	kl := int(src[2])
	vl := int(binary.LittleEndian.Uint32(src[4:]))
	size = entrySize(kl, vl)
	if int64(len(src)) < size {
		return nil, nil, false, 0, fmt.Errorf("fawn: truncated entry")
	}
	return src[entryHdr : entryHdr+kl], src[entryHdr+kl : size], src[3]&flagDel != 0, size, nil
}

func (d *DS) cpu(p *sim.Proc, cycles int64) { d.cfg.Exec.Compute(p, cycles) }

// Get reads a key with exactly one device access.
func (d *DS) Get(p *sim.Proc, key []byte) ([]byte, error) {
	d.mu.Lock(p)
	defer d.mu.Unlock()
	d.stats.Gets++
	d.o.gets.Inc()
	d.cpu(p, d.cfg.Costs.Lookup)
	e, ok := d.index[string(key)]
	if !ok {
		d.stats.NotFounds++
		d.o.notFounds.Inc()
		return nil, core.ErrNotFound
	}
	buf := make([]byte, e.size)
	if err := d.log.Read(p, e.off, buf); err != nil {
		return nil, err
	}
	_, val, _, _, err := parseEntry(buf)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), val...), nil
}

// Put appends a log entry and updates the DRAM index (one device access).
func (d *DS) Put(p *sim.Proc, key, val []byte) error {
	d.mu.Lock(p)
	defer d.mu.Unlock()
	d.stats.Puts++
	d.o.puts.Inc()
	d.cpu(p, d.cfg.Costs.Lookup+d.cfg.Costs.Append)
	if _, exists := d.index[string(key)]; !exists && int64(len(d.index)) >= d.MaxObjects() {
		d.stats.IndexRejects++
		d.o.indexRejects.Inc()
		return ErrFull
	}
	entry := marshalEntry(key, val, false)
	off, err := d.appendWithCompaction(p, entry)
	if err != nil {
		return err
	}
	if old, exists := d.index[string(key)]; exists {
		d.live -= old.size
	}
	d.index[string(key)] = indexEntry{off: off, size: int64(len(entry))}
	d.live += int64(len(entry))
	return nil
}

// Del appends a tombstone and drops the index entry (one device access).
func (d *DS) Del(p *sim.Proc, key []byte) error {
	d.mu.Lock(p)
	defer d.mu.Unlock()
	d.stats.Dels++
	d.o.dels.Inc()
	d.cpu(p, d.cfg.Costs.Lookup+d.cfg.Costs.Append)
	old, exists := d.index[string(key)]
	if !exists {
		d.stats.NotFounds++
		d.o.notFounds.Inc()
		return core.ErrNotFound
	}
	entry := marshalEntry(key, nil, true)
	if _, err := d.appendWithCompaction(p, entry); err != nil {
		return err
	}
	delete(d.index, string(key))
	d.live -= old.size
	return nil
}

func (d *DS) appendWithCompaction(p *sim.Proc, entry []byte) (int64, error) {
	for attempt := 0; ; attempt++ {
		off, ev, err := d.log.Append(entry)
		if err == nil {
			if werr := p.Wait(ev); werr != nil {
				return 0, werr.(error)
			}
			return off, nil
		}
		if err != core.ErrLogFull || attempt >= 2 {
			return 0, ErrFull
		}
		if _, cerr := d.compactLocked(p); cerr != nil {
			return 0, cerr
		}
	}
}

// Compact reclaims dead log space: a single-threaded scan from the head
// that re-appends live entries. This is the unoptimized process LEED's
// parallel sub-compactions improve on (§4.2, Figure 13).
func (d *DS) Compact(p *sim.Proc) (int64, error) {
	d.mu.Lock(p)
	defer d.mu.Unlock()
	return d.compactLocked(p)
}

func (d *DS) compactLocked(p *sim.Proc) (int64, error) {
	d.stats.Compactions++
	d.o.compactions.Inc()
	const chunkSize = 256 << 10
	want := int64(chunkSize)
	if want > d.log.Used() {
		want = d.log.Used()
	}
	if want <= 0 {
		return 0, nil
	}
	head := d.log.Head()
	buf := make([]byte, want)
	if err := d.log.Read(p, head, buf); err != nil {
		return 0, err
	}
	pos := int64(0)
	for pos < want {
		key, _, _, size, err := parseEntry(buf[pos:])
		if err != nil {
			break
		}
		d.cpu(p, d.cfg.Costs.Compact)
		e, ok := d.index[string(key)]
		if ok && e.off == head+pos {
			newOff, ev, aerr := d.log.Append(buf[pos : pos+size])
			if aerr != nil {
				break
			}
			if werr := p.Wait(ev); werr != nil {
				return 0, werr.(error)
			}
			d.index[string(key)] = indexEntry{off: newOff, size: size}
		}
		pos += size
	}
	if pos > 0 {
		d.log.ReleaseTo(head + pos)
		d.stats.ReclaimedBytes += pos
		d.o.reclaimedBytes.Add(pos)
	}
	return pos, nil
}

// NeedsCompaction reports whether the log passed 75% occupancy with
// reclaimable space.
func (d *DS) NeedsCompaction() bool {
	return d.log.Used()*4 >= d.log.Size()*3 && d.log.Used() > d.live
}

// MaxCapacityFraction returns the fraction of flash FAWN can use for live
// payload given a DRAM budget (Table 3's capacity row). Two thirds of DRAM
// go to the index; the rest is OS, buffers, and log metadata — the split
// that reproduces the paper's measured 7.7%/24.1%.
func MaxCapacityFraction(flashBytes, dramBudget int64, keyLen, valLen int) float64 {
	byDRAM := dramBudget * 2 / 3 / IndexBytesPerObject
	perObj := entrySize(keyLen, valLen)
	byFlash := flashBytes / perObj
	objs := byDRAM
	if byFlash < objs {
		objs = byFlash
	}
	return float64(objs*int64(keyLen+valLen)) / float64(flashBytes)
}
