// Package bcommon is the distributed harness shared by the FAWN and KVell
// baselines: servers with worker pools over per-worker backends, classic
// chain replication (writes chain head-to-tail, reads served by the tail),
// and a simple client library — no flow control, no request shipping, no
// data swapping, which is exactly what the paper compares LEED against.
package bcommon

import (
	"errors"
	"fmt"

	"leed/internal/core"
	"leed/internal/netsim"
	"leed/internal/obs"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/runtime"
	"leed/internal/sim"
)

// ErrTimeout reports an exhausted retry budget.
var ErrTimeout = errors.New("bcommon: request timed out")

// Backend is one worker's storage engine (a fawn.DS or kvell.Store wrapper).
type Backend interface {
	Get(p *sim.Proc, key []byte) ([]byte, error)
	Put(p *sim.Proc, key, val []byte) error
	Del(p *sim.Proc, key []byte) error
}

// Gate serializes compute onto a core; backends use it as their core.Exec.
type Gate struct {
	Core *platform.Core
	res  runtime.Resource
}

// NewGate wraps a core.
func NewGate(env runtime.Env, c *platform.Core) *Gate {
	return &Gate{Core: c, res: env.MakeResource(1)}
}

// Compute implements core.Exec.
func (g *Gate) Compute(t runtime.Task, cycles int64) {
	g.res.Acquire(t, 1)
	g.Core.RunCycles(t, cycles)
	g.res.Release(1)
}

type envelope struct {
	req        *rpcproto.Request
	clientAddr netsim.Addr
	complete   *sim.Event
}

// ServerConfig wires one baseline storage server.
type ServerConfig struct {
	Kernel   sim.Runner
	Index    int // position in the cluster's node list
	Endpoint *netsim.Endpoint
	Platform *platform.Node

	// Backends, one per worker. Requests partition over workers by key
	// hash (shared-nothing).
	Backends []Backend

	// Synchronous makes each worker serve one request at a time, blocking
	// through its I/O (FAWN's execution model). When false each worker
	// pipelines up to Depth concurrent requests (KVell's batched I/O).
	Synchronous bool
	Depth       int

	RxCycles int64

	// Obs receives the server's counter series (leed_baseline_*), so
	// baseline runs report through the same registry as LEED. May be nil.
	Obs *obs.Registry

	cluster *Cluster
}

// ServerStats are cumulative counters.
type ServerStats struct {
	Gets, Puts, Dels, Forwards int64
	Errors                     int64
}

// Server is one baseline node.
type Server struct {
	cfg    ServerConfig
	k      sim.Runner
	queues []runtime.Queue
	stats  ServerStats
	o      *serverObs
}

// serverObs mirrors ServerStats into registry counters. Always constructed
// (a nil registry hands back working unregistered counters).
type serverObs struct {
	gets, puts, dels *obs.Counter
	forwards, errors *obs.Counter
}

func newServerObs(reg *obs.Registry, index int) *serverObs {
	c := func(name string) *obs.Counter { return reg.Counter(name, "server", fmt.Sprintf("s%d", index)) }
	return &serverObs{
		gets:     c("leed_baseline_gets_total"),
		puts:     c("leed_baseline_puts_total"),
		dels:     c("leed_baseline_dels_total"),
		forwards: c("leed_baseline_forwards_total"),
		errors:   c("leed_baseline_errors_total"),
	}
}

// NewServer creates a server; Start launches its procs.
func NewServer(cfg ServerConfig) *Server {
	if cfg.RxCycles == 0 {
		cfg.RxCycles = 2000
	}
	if cfg.Depth == 0 {
		cfg.Depth = 16
	}
	s := &Server{cfg: cfg, k: cfg.Kernel, o: newServerObs(cfg.Obs, cfg.Index)}
	for range cfg.Backends {
		s.queues = append(s.queues, cfg.Kernel.MakeQueue())
	}
	return s
}

// Stats returns cumulative counters.
func (s *Server) Stats() ServerStats { return s.stats }

// Start launches the poll loop and worker procs.
func (s *Server) Start() {
	s.k.Go("bl-poll", func(p *sim.Proc) {
		rx := s.cfg.Endpoint.RX()
		for {
			m := rx.Get(p).(*netsim.Message)
			env, ok := m.Payload.(*envelope)
			if !ok {
				continue
			}
			w := int(core.HashKey(env.req.Key) % uint64(len(s.queues)))
			s.queues[w].Put(env)
		}
	})
	for w := range s.cfg.Backends {
		w := w
		if s.cfg.Synchronous {
			s.k.Go("bl-worker", func(p *sim.Proc) { s.workerLoop(p, w) })
			continue
		}
		// Pipelined: Depth concurrent executors share the worker queue.
		for d := 0; d < s.cfg.Depth; d++ {
			s.k.Go("bl-worker", func(p *sim.Proc) { s.workerLoop(p, w) })
		}
	}
}

func (s *Server) workerLoop(p *sim.Proc, w int) {
	be := s.cfg.Backends[w]
	for {
		env := s.queues[w].Get(p).(*envelope)
		req := env.req
		var (
			val []byte
			err error
		)
		switch req.Op {
		case rpcproto.OpGet:
			s.stats.Gets++
			s.o.gets.Inc()
			val, err = be.Get(p, req.Key)
		case rpcproto.OpPut:
			s.stats.Puts++
			s.o.puts.Inc()
			err = be.Put(p, req.Key, req.Value)
		case rpcproto.OpDel:
			s.stats.Dels++
			s.o.dels.Inc()
			err = be.Del(p, req.Key)
		default:
			err = fmt.Errorf("bcommon: op %v", req.Op)
		}
		isWrite := req.Op == rpcproto.OpPut || req.Op == rpcproto.OpDel
		notFound := err == core.ErrNotFound
		if err != nil && !notFound {
			s.stats.Errors++
			s.o.errors.Inc()
			s.reply(env, &rpcproto.Response{ID: req.ID, Status: rpcproto.StatusErr})
			continue
		}
		chain := s.cfg.cluster.chain(req.Partition)
		if isWrite && int(req.Hop) < len(chain)-1 {
			// Propagate down the chain before acking the client.
			s.stats.Forwards++
			s.o.forwards.Inc()
			fwd := *req
			fwd.Hop++
			next := s.cfg.cluster.servers[chain[int(fwd.Hop)]]
			s.cfg.Endpoint.Send(next.cfg.Endpoint.Addr(), fwd.WireSize(),
				&envelope{req: &fwd, clientAddr: env.clientAddr, complete: env.complete})
			continue
		}
		status := rpcproto.StatusOK
		if notFound {
			status = rpcproto.StatusNotFound
		}
		s.reply(env, &rpcproto.Response{ID: req.ID, Status: status, Value: val})
	}
}

func (s *Server) reply(env *envelope, resp *rpcproto.Response) {
	s.cfg.Endpoint.Write(env.clientAddr, resp.WireSize(), resp, env.complete)
}

// Cluster is a static-membership baseline cluster.
type Cluster struct {
	K       sim.Runner
	R       int
	NumPart int
	servers []*Server
}

// NewCluster assembles servers (already constructed) into a chain ring.
func NewCluster(k sim.Runner, r, numPart int, servers []*Server) *Cluster {
	c := &Cluster{K: k, R: r, NumPart: numPart, servers: servers}
	for _, s := range servers {
		s.cfg.cluster = c
	}
	return c
}

// chain returns server indices for a partition: R ring successors.
func (c *Cluster) chain(part uint32) []int {
	n := len(c.servers)
	r := c.R
	if r > n {
		r = n
	}
	out := make([]int, 0, r)
	for i := 0; i < r; i++ {
		out = append(out, (int(part)+i)%n)
	}
	return out
}

// Client is the baseline front-end: consistent key->partition mapping,
// writes to the chain head, reads at the tail, timeout retries.
type Client struct {
	k       sim.Runner
	ep      *netsim.Endpoint
	c       *Cluster
	nextID  uint64
	Timeout sim.Time
	Retries int
}

// NewClient creates a client endpoint for the cluster.
func NewClient(k sim.Runner, ep *netsim.Endpoint, c *Cluster) *Client {
	return &Client{k: k, ep: ep, c: c, Timeout: 50 * sim.Millisecond, Retries: 5}
}

// Do executes one operation and returns its latency.
func (cl *Client) Do(p *sim.Proc, op rpcproto.Op, key, val []byte) (*rpcproto.Response, sim.Time, error) {
	start := p.Now()
	part := uint32(core.HashKey(key) % uint64(cl.c.NumPart))
	chain := cl.c.chain(part)
	for attempt := 0; attempt < cl.Retries; attempt++ {
		cl.nextID++
		req := &rpcproto.Request{ID: cl.nextID, Op: op, Partition: part, Key: key, Value: val}
		targetIdx := chain[0] // writes enter at the head
		if op == rpcproto.OpGet {
			targetIdx = chain[len(chain)-1] // reads at the tail
		}
		srv := cl.c.servers[targetIdx]
		done := cl.k.NewEvent()
		cl.ep.Send(srv.cfg.Endpoint.Addr(), req.WireSize(),
			&envelope{req: req, clientAddr: cl.ep.Addr(), complete: done})
		if cl.Timeout <= 0 {
			m := p.Wait(done)
			return m.(*netsim.Message).Payload.(*rpcproto.Response), p.Now() - start, nil
		}
		if idx := p.WaitAny(done, cl.k.Timer(cl.Timeout)); idx == 0 {
			resp := done.Value().(*netsim.Message).Payload.(*rpcproto.Response)
			return resp, p.Now() - start, nil
		}
	}
	return nil, p.Now() - start, ErrTimeout
}

// Get fetches a key.
func (cl *Client) Get(p *sim.Proc, key []byte) ([]byte, sim.Time, error) {
	resp, lat, err := cl.Do(p, rpcproto.OpGet, key, nil)
	if err != nil {
		return nil, lat, err
	}
	if resp.Status == rpcproto.StatusNotFound {
		return nil, lat, core.ErrNotFound
	}
	if resp.Status != rpcproto.StatusOK {
		return nil, lat, fmt.Errorf("bcommon: status %v", resp.Status)
	}
	return resp.Value, lat, nil
}

// Put writes a key through the chain.
func (cl *Client) Put(p *sim.Proc, key, val []byte) (sim.Time, error) {
	resp, lat, err := cl.Do(p, rpcproto.OpPut, key, val)
	if err != nil {
		return lat, err
	}
	if resp.Status != rpcproto.StatusOK {
		return lat, fmt.Errorf("bcommon: status %v", resp.Status)
	}
	return lat, nil
}

// Del removes a key.
func (cl *Client) Del(p *sim.Proc, key []byte) (sim.Time, error) {
	resp, lat, err := cl.Do(p, rpcproto.OpDel, key, nil)
	if err != nil {
		return lat, err
	}
	if resp.Status == rpcproto.StatusNotFound {
		return lat, core.ErrNotFound
	}
	return lat, nil
}
