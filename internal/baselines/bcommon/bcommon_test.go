package bcommon

import (
	"fmt"
	"testing"

	"leed/internal/baselines/fawn"
	"leed/internal/baselines/kvell"
	"leed/internal/core"
	"leed/internal/netsim"
	"leed/internal/platform"
	"leed/internal/sim"
)

// fawnBackend adapts fawn.DS to Backend.
type fawnBackend struct{ ds *fawn.DS }

func (b fawnBackend) Get(p *sim.Proc, key []byte) ([]byte, error) { return b.ds.Get(p, key) }
func (b fawnBackend) Put(p *sim.Proc, key, val []byte) error      { return b.ds.Put(p, key, val) }
func (b fawnBackend) Del(p *sim.Proc, key []byte) error           { return b.ds.Del(p, key) }

// kvellBackend adapts kvell.Store to Backend.
type kvellBackend struct{ st *kvell.Store }

func (b kvellBackend) Get(p *sim.Proc, key []byte) ([]byte, error) { return b.st.Get(p, key) }
func (b kvellBackend) Put(p *sim.Proc, key, val []byte) error      { return b.st.Put(p, key, val) }
func (b kvellBackend) Del(p *sim.Proc, key []byte) error           { return b.st.Del(p, key) }

// buildFawnCluster assembles n Pi-style nodes with one FAWN-DS per core.
func buildFawnCluster(k sim.Runner, n int) (*Cluster, *Client) {
	fab := netsim.New(k, netsim.Config{})
	var servers []*Server
	for i := 0; i < n; i++ {
		plat := platform.NewNode(k, platform.RaspberryPi(), 1, 64<<20, int64(i))
		var backends []Backend
		workers := 2
		for w := 0; w < workers; w++ {
			gate := NewGate(k, plat.Cores[w%len(plat.Cores)])
			ds := fawn.New(fawn.Config{
				Kernel: k, Device: plat.SSDs[0], Exec: gate,
				RegionOff: int64(w) * (32 << 20), LogBytes: 16 << 20,
			})
			backends = append(backends, fawnBackend{ds})
		}
		ep := fab.AddNode(netsim.Addr(100+i), platform.RaspberryPi().NICBitsPerS)
		servers = append(servers, NewServer(ServerConfig{
			Kernel: k, Index: i, Endpoint: ep, Platform: plat,
			Backends: backends, Synchronous: true,
		}))
	}
	c := NewCluster(k, 3, 16, servers)
	for _, s := range servers {
		s.Start()
	}
	clEp := fab.AddNode(1000, 100_000_000_000)
	return c, NewClient(k, clEp, c)
}

func TestBaselineFawnClusterCRUD(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, cl := buildFawnCluster(k, 4)
	done := false
	k.Go("driver", func(p *sim.Proc) {
		defer func() { done = true }()
		for i := 0; i < 30; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i))
			if _, err := cl.Put(p, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		for i := 0; i < 30; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i))
			v, _, err := cl.Get(p, key)
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Errorf("get %d = %q, %v", i, v, err)
				return
			}
		}
		if _, err := cl.Del(p, []byte("key-000")); err != nil {
			t.Errorf("del: %v", err)
			return
		}
		if _, _, err := cl.Get(p, []byte("key-000")); err != core.ErrNotFound {
			t.Errorf("get after del: %v", err)
		}
	})
	for !done && k.Now() < 120*sim.Second {
		k.Run(k.Now() + 100*sim.Millisecond)
	}
	if !done {
		t.Fatal("driver timed out")
	}
}

func TestBaselineWritesReplicate(t *testing.T) {
	k := sim.New()
	defer k.Close()
	c, cl := buildFawnCluster(k, 4)
	done := false
	k.Go("driver", func(p *sim.Proc) {
		defer func() { done = true }()
		key := []byte("replicated")
		if _, err := cl.Put(p, key, []byte("v")); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		part := uint32(core.HashKey(key) % uint64(c.NumPart))
		chain := c.chain(part)
		if len(chain) != 3 {
			t.Errorf("chain = %v", chain)
			return
		}
		// Each chain member's backend holds the key.
		for _, idx := range chain {
			srv := c.servers[idx]
			w := int(core.HashKey(key) % uint64(len(srv.cfg.Backends)))
			v, err := srv.cfg.Backends[w].Get(p, key)
			if err != nil || string(v) != "v" {
				t.Errorf("replica %d: %q, %v", idx, v, err)
				return
			}
		}
	})
	for !done && k.Now() < 60*sim.Second {
		k.Run(k.Now() + 100*sim.Millisecond)
	}
	if !done {
		t.Fatal("driver timed out")
	}
}

func TestBaselineKVellPipelined(t *testing.T) {
	k := sim.New()
	defer k.Close()
	fab := netsim.New(k, netsim.Config{})
	plat := platform.NewNode(k, platform.ServerJBOF(), 4, 128<<20, 1)
	var backends []Backend
	for w := 0; w < 4; w++ {
		gate := NewGate(k, plat.Cores[w])
		st := kvell.New(kvell.Config{
			Kernel: k, Device: plat.SSDs[w], Exec: gate,
			SlotBytes: 512, NumSlots: 4096,
		})
		backends = append(backends, kvellBackend{st})
	}
	ep := fab.AddNode(100, platform.ServerJBOF().NICBitsPerS)
	srv := NewServer(ServerConfig{
		Kernel: k, Endpoint: ep, Platform: plat,
		Backends: backends, Synchronous: false, Depth: 8,
	})
	c := NewCluster(k, 1, 8, []*Server{srv})
	srv.Start()
	clEp := fab.AddNode(1000, 100_000_000_000)
	cl := NewClient(k, clEp, c)
	done := false
	k.Go("driver", func(p *sim.Proc) {
		defer func() { done = true }()
		evs := make([]*sim.Event, 0, 64)
		for i := 0; i < 64; i++ {
			i := i
			ev := k.NewEvent()
			evs = append(evs, ev)
			k.Go("op", func(op *sim.Proc) {
				key := []byte(fmt.Sprintf("key-%03d", i))
				if _, err := cl.Put(op, key, []byte("v")); err != nil {
					t.Errorf("put: %v", err)
				}
				ev.Fire(nil)
			})
		}
		p.WaitAll(evs...)
		for i := 0; i < 64; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i))
			if v, _, err := cl.Get(p, key); err != nil || string(v) != "v" {
				t.Errorf("get %d: %q, %v", i, v, err)
				return
			}
		}
	})
	for !done && k.Now() < 60*sim.Second {
		k.Run(k.Now() + 100*sim.Millisecond)
	}
	if !done {
		t.Fatal("driver timed out")
	}
}

func TestSynchronousWorkersSerialize(t *testing.T) {
	// A synchronous FAWN worker handles one request at a time, so N
	// same-worker requests take ~N * (device latency).
	k := sim.New()
	defer k.Close()
	_, cl := buildFawnCluster(k, 3)
	var elapsed sim.Time
	done := false
	k.Go("driver", func(p *sim.Proc) {
		defer func() { done = true }()
		cl.Put(p, []byte("hot"), []byte("v"))
		start := p.Now()
		evs := make([]*sim.Event, 0, 8)
		for i := 0; i < 8; i++ {
			ev := k.NewEvent()
			evs = append(evs, ev)
			k.Go("op", func(op *sim.Proc) {
				cl.Get(op, []byte("hot"))
				ev.Fire(nil)
			})
		}
		p.WaitAll(evs...)
		elapsed = p.Now() - start
	})
	for !done && k.Now() < 60*sim.Second {
		k.Run(k.Now() + 100*sim.Millisecond)
	}
	if !done {
		t.Fatal("driver timed out")
	}
	// SD card read ~700us+: 8 serialized reads must take >4ms.
	if elapsed < 4*sim.Millisecond {
		t.Fatalf("8 same-key GETs finished in %v; workers not synchronous", elapsed)
	}
}
