package kvell

import (
	"fmt"
	"testing"

	"leed/internal/flashsim"
	"leed/internal/sim"
)

func TestPageCacheLRU(t *testing.T) {
	c := newPageCache(2)
	c.put(1, []byte("a"))
	c.put(2, []byte("b"))
	if v, ok := c.get(1); !ok || string(v) != "a" {
		t.Fatal("miss on resident slot")
	}
	c.put(3, []byte("c")) // evicts 2 (LRU), not 1 (recently used)
	if _, ok := c.get(2); ok {
		t.Fatal("slot 2 should have been evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("slot 1 evicted despite recent use")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("slot 3 missing")
	}
}

func TestPageCacheUpdateAndDrop(t *testing.T) {
	c := newPageCache(4)
	c.put(1, []byte("v1"))
	c.put(1, []byte("v2"))
	if v, _ := c.get(1); string(v) != "v2" {
		t.Fatalf("stale cache: %q", v)
	}
	c.drop(1)
	if _, ok := c.get(1); ok {
		t.Fatal("dropped slot still cached")
	}
	c.drop(99) // no-op
}

func TestPageCacheDisabled(t *testing.T) {
	c := newPageCache(0)
	c.put(1, []byte("a"))
	if _, ok := c.get(1); ok {
		t.Fatal("zero-capacity cache stored data")
	}
	var nilc *pageCache
	if _, ok := nilc.get(1); ok {
		t.Fatal("nil cache returned data")
	}
}

func TestStoreCacheAvoidsDeviceReads(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 8<<20)
	s := New(Config{
		Kernel: k, Device: dev, SlotBytes: 512, NumSlots: 256, CacheSlots: 64,
	})
	run(k, func(p *sim.Proc) {
		s.Put(p, []byte("hot"), []byte("v"))
		for i := 0; i < 10; i++ {
			if v, err := s.Get(p, []byte("hot")); err != nil || string(v) != "v" {
				t.Errorf("get: %q, %v", v, err)
				return
			}
		}
	})
	if dev.Stats().Reads != 0 {
		t.Fatalf("device reads = %d; put should have primed the cache", dev.Stats().Reads)
	}
	if s.Stats().CacheHits != 10 {
		t.Fatalf("cache hits = %d", s.Stats().CacheHits)
	}
}

func TestStoreCacheCoherentAfterOverwriteAndDelete(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 8<<20)
	s := New(Config{
		Kernel: k, Device: dev, SlotBytes: 512, NumSlots: 8, CacheSlots: 8,
	})
	run(k, func(p *sim.Proc) {
		s.Put(p, []byte("k"), []byte("v1"))
		s.Get(p, []byte("k"))
		s.Put(p, []byte("k"), []byte("v2"))
		if v, _ := s.Get(p, []byte("k")); string(v) != "v2" {
			t.Errorf("stale cached value: %q", v)
		}
		s.Del(p, []byte("k"))
		// Reuse the slot for another key; the cache must not leak "k".
		s.Put(p, []byte("j"), []byte("jv"))
		if v, err := s.Get(p, []byte("j")); err != nil || string(v) != "jv" {
			t.Errorf("get j: %q, %v", v, err)
		}
		if _, err := s.Get(p, []byte("k")); err == nil {
			t.Error("deleted key readable")
		}
	})
}

func TestStoreCacheZipfHitRate(t *testing.T) {
	// Skewed access over a cache covering 10% of slots should hit often.
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 32<<20)
	s := New(Config{
		Kernel: k, Device: dev, SlotBytes: 512, NumSlots: 1000, CacheSlots: 100,
	})
	run(k, func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			s.Put(p, []byte(fmt.Sprintf("key%04d", i)), []byte("v"))
		}
		// 80/20-style access: 80% of reads to the first 50 keys.
		for i := 0; i < 2000; i++ {
			var id int
			if i%5 != 0 {
				id = i % 50
			} else {
				id = i % 1000
			}
			s.Get(p, []byte(fmt.Sprintf("key%04d", id)))
		}
	})
	hits := s.Stats().CacheHits
	if hits < 1200 {
		t.Fatalf("cache hits = %d/2000 under skewed reads", hits)
	}
}
