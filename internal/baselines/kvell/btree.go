// Package kvell reimplements KVell (Lepers et al., SOSP'19) as the paper's
// server-JBOF baseline: shared-nothing per-core workers, a full in-memory
// B-tree index, fixed-size on-disk slots with free lists, and exactly one
// device access per operation. Its defining costs on a SmartNIC JBOF are
// the DRAM-resident index (capacity ceiling, Table 3) and the
// computation-heavy sorted index on wimpy cores (§4.2).
package kvell

// btree is an in-memory B-tree mapping string keys to int64 slot numbers.
// It is a real index structure — lookups walk nodes, inserts split — so the
// workload's index CPU cost has a concrete referent.
const btreeOrder = 32 // max children per internal node

type btreeNode struct {
	keys     []string
	vals     []int64
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// BTree is the index. The zero value is not usable; use NewBTree.
type BTree struct {
	root *btreeNode
	size int
}

// NewBTree returns an empty tree.
func NewBTree() *BTree { return &BTree{root: &btreeNode{}} }

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// search returns the index of the first key >= k in the node.
func search(keys []string, k string) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == k
}

// Get returns the slot for key.
func (t *BTree) Get(key string) (int64, bool) {
	n := t.root
	for {
		i, eq := search(n.keys, key)
		if eq {
			if n.vals[i] == deletedSlot {
				return 0, false
			}
			return n.vals[i], true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
}

// Put inserts or updates key -> slot.
func (t *BTree) Put(key string, slot int64) {
	if len(t.root.keys) == btreeOrder-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	if t.insertNonFull(t.root, key, slot) {
		t.size++
	}
}

func (t *BTree) splitChild(parent *btreeNode, i int) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	midKey, midVal := child.keys[mid], child.vals[mid]
	right := &btreeNode{
		keys: append([]string(nil), child.keys[mid+1:]...),
		vals: append([]int64(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	parent.keys = append(parent.keys, "")
	parent.vals = append(parent.vals, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	copy(parent.vals[i+1:], parent.vals[i:])
	parent.keys[i] = midKey
	parent.vals[i] = midVal
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

// insertNonFull reports whether a new key was inserted (false on update).
func (t *BTree) insertNonFull(n *btreeNode, key string, slot int64) bool {
	for {
		i, eq := search(n.keys, key)
		if eq {
			revived := n.vals[i] == deletedSlot
			n.vals[i] = slot
			return revived
		}
		if n.leaf() {
			n.keys = append(n.keys, "")
			n.vals = append(n.vals, 0)
			copy(n.keys[i+1:], n.keys[i:])
			copy(n.vals[i+1:], n.vals[i:])
			n.keys[i] = key
			n.vals[i] = slot
			return true
		}
		if len(n.children[i].keys) == btreeOrder-1 {
			t.splitChild(n, i)
			if key == n.keys[i] {
				revived := n.vals[i] == deletedSlot
				n.vals[i] = slot
				return revived
			}
			if key > n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// deletedSlot marks a tombstoned key. Deletion is lazy: the key stays in
// the node with this sentinel value (re-insertion revives it). This keeps
// the structure valid without rebalancing; index memory accounting uses the
// live count, not node bytes.
const deletedSlot = int64(-1)

// Delete removes key, returning its slot.
func (t *BTree) Delete(key string) (int64, bool) {
	n := t.root
	for {
		i, eq := search(n.keys, key)
		if eq {
			slot := n.vals[i]
			if slot == deletedSlot {
				return 0, false
			}
			n.vals[i] = deletedSlot
			t.size--
			return slot, true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
}

// Depth returns the tree height (for cost-model sanity checks).
func (t *BTree) Depth() int {
	d := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}

// Ascend calls fn for every key in order until fn returns false.
func (t *BTree) Ascend(fn func(key string, slot int64) bool) {
	var walk func(n *btreeNode) bool
	walk = func(n *btreeNode) bool {
		for i := range n.keys {
			if !n.leaf() {
				if !walk(n.children[i]) {
					return false
				}
			}
			if n.vals[i] == deletedSlot {
				continue
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		if !n.leaf() {
			return walk(n.children[len(n.children)-1])
		}
		return true
	}
	walk(t.root)
}
