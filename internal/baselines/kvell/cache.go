package kvell

// pageCache is a small LRU of slot contents: KVell's DRAM page cache.
// Implemented as an intrusive doubly-linked list over a map, O(1) per
// operation.
type pageCache struct {
	cap   int
	items map[int64]*cacheNode // by slot
	head  *cacheNode           // most recent
	tail  *cacheNode

	hits, misses int64
}

type cacheNode struct {
	slot       int64
	data       []byte
	prev, next *cacheNode
}

func newPageCache(capSlots int) *pageCache {
	return &pageCache{cap: capSlots, items: make(map[int64]*cacheNode)}
}

func (c *pageCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *pageCache) pushFront(n *cacheNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// get returns the cached slot contents (not copied) and promotes the entry.
func (c *pageCache) get(slot int64) ([]byte, bool) {
	if c == nil || c.cap == 0 {
		return nil, false
	}
	n, ok := c.items[slot]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.unlink(n)
	c.pushFront(n)
	return n.data, true
}

// put inserts or refreshes a slot's contents (copied), evicting LRU.
func (c *pageCache) put(slot int64, data []byte) {
	if c == nil || c.cap == 0 {
		return
	}
	if n, ok := c.items[slot]; ok {
		n.data = append(n.data[:0], data...)
		c.unlink(n)
		c.pushFront(n)
		return
	}
	if len(c.items) >= c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.items, evict.slot)
	}
	n := &cacheNode{slot: slot, data: append([]byte(nil), data...)}
	c.items[slot] = n
	c.pushFront(n)
}

// drop removes a slot from the cache (on delete/slot reuse).
func (c *pageCache) drop(slot int64) {
	if c == nil {
		return
	}
	if n, ok := c.items[slot]; ok {
		c.unlink(n)
		delete(c.items, slot)
	}
}
