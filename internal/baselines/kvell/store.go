package kvell

import (
	"encoding/binary"
	"errors"
	"fmt"

	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/sim"
)

// ErrFull reports slot or index exhaustion.
var ErrFull = errors.New("kvell: store full")

const slotHdr = 8 // magic u16 | klen u8 | pad u8 | vlen u32

// Costs model KVell's per-op compute. IndexCycles dominates: B-tree walks
// are pointer-chasing and comparison heavy, which is what makes KVell slow
// on the wimpy SmartNIC cores (Table 3: 416-445us reads) yet fast on Xeon.
type Costs struct {
	IndexCycles int64 // per index operation (lookup/insert)
	IOCycles    int64 // submission/completion bookkeeping
	CacheCycles int64 // page-cache hit service
}

// DefaultCosts is calibrated for a Xeon-class core (~3.5us per B-tree
// operation at 2.3GHz); the bench inflates IndexCycles by an order of
// magnitude for the in-order ARM A72, whose small caches make deep
// pointer-chasing walks dramatically slower — that split reproduces both
// Table 3's KVell-JBOF numbers and Figure 6's Server-KVell throughput.
func DefaultCosts() Costs {
	return Costs{IndexCycles: 8000, IOCycles: 2500, CacheCycles: 1500}
}

// Config wires one shared-nothing KVell worker's store.
type Config struct {
	Kernel sim.Runner
	Device flashsim.Device
	Exec   core.Exec
	Costs  Costs

	RegionOff int64
	SlotBytes int64 // fixed on-disk slot size (>= slotHdr+key+val)
	NumSlots  int64

	// MaxObjects caps the index per the DRAM budget (Table 3's KVell
	// capacity ceiling). Zero means unlimited.
	MaxObjects int64

	// CacheSlots sizes the worker's DRAM page cache (in slots). KVell
	// keeps a page cache alongside its index; under skewed reads the hot
	// set is served from DRAM without device I/O. Zero disables caching.
	CacheSlots int

	// Obs receives the store's counter series (leed_kvell_*), so baseline
	// runs report through the same registry as LEED. May be nil.
	Obs *obs.Registry
	// ObsLabel distinguishes worker stores in the registry.
	ObsLabel string
}

// Stats are cumulative counters.
type Stats struct {
	Gets, Puts, Dels int64
	NotFounds        int64
	IndexRejects     int64
	CacheHits        int64
}

// Store is one worker's slot file plus its in-memory B-tree index. KVell
// writes in place (no compaction) and keeps free slots on a free list.
type Store struct {
	cfg   Config
	k     sim.Runner
	index *BTree
	free  []int64
	cache *pageCache
	// mu protects the index and free list across a worker's pipelined
	// requests; device I/O runs outside the lock (KVell's batched I/O).
	mu    sim.Mutex
	stats Stats
	o     *storeObs
}

// storeObs mirrors Stats into registry counters. Always constructed (a nil
// registry hands back working unregistered counters).
type storeObs struct {
	gets, puts, dels *obs.Counter
	notFounds        *obs.Counter
	indexRejects     *obs.Counter
	cacheHits        *obs.Counter
}

func newStoreObs(reg *obs.Registry, label string) *storeObs {
	c := func(name string) *obs.Counter { return reg.Counter(name, "store", label) }
	return &storeObs{
		gets:         c("leed_kvell_gets_total"),
		puts:         c("leed_kvell_puts_total"),
		dels:         c("leed_kvell_dels_total"),
		notFounds:    c("leed_kvell_not_found_total"),
		indexRejects: c("leed_kvell_index_rejects_total"),
		cacheHits:    c("leed_kvell_cache_hits_total"),
	}
}

// New creates a store with all slots free.
func New(cfg Config) *Store {
	if cfg.Exec == nil {
		cfg.Exec = core.NopExec{}
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	s := &Store{cfg: cfg, k: cfg.Kernel, index: NewBTree(), cache: newPageCache(cfg.CacheSlots),
		o: newStoreObs(cfg.Obs, cfg.ObsLabel)}
	for i := cfg.NumSlots - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// Stats returns cumulative counters.
func (s *Store) Stats() Stats { return s.stats }

// Objects returns the live object count.
func (s *Store) Objects() int64 { return int64(s.index.Len()) }

func (s *Store) slotOff(slot int64) int64 { return s.cfg.RegionOff + slot*s.cfg.SlotBytes }

func (s *Store) cpu(p *sim.Proc, cycles int64) { s.cfg.Exec.Compute(p, cycles) }

func (s *Store) io(p *sim.Proc, kind flashsim.OpKind, slot int64, data []byte) error {
	done := s.k.NewEvent()
	s.cfg.Device.Submit(&flashsim.Op{Kind: kind, Offset: s.slotOff(slot), Data: data, Done: done})
	if v := p.Wait(done); v != nil {
		return v.(error)
	}
	return nil
}

// Get performs one index walk and one slot read.
func (s *Store) Get(p *sim.Proc, key []byte) ([]byte, error) {
	s.stats.Gets++
	s.o.gets.Inc()
	s.mu.Lock(p)
	s.cpu(p, s.cfg.Costs.IndexCycles)
	slot, ok := s.index.Get(string(key))
	s.mu.Unlock()
	if !ok {
		s.stats.NotFounds++
		s.o.notFounds.Inc()
		return nil, core.ErrNotFound
	}
	var buf []byte
	if cached, hit := s.cache.get(slot); hit {
		// Served from the DRAM page cache: no device access.
		s.stats.CacheHits++
		s.o.cacheHits.Inc()
		s.cpu(p, s.cfg.Costs.CacheCycles)
		buf = cached
	} else {
		buf = make([]byte, s.cfg.SlotBytes)
		s.cpu(p, s.cfg.Costs.IOCycles)
		if err := s.io(p, flashsim.OpRead, slot, buf); err != nil {
			return nil, err
		}
		s.cache.put(slot, buf)
	}
	k2, v, err := parseSlot(buf)
	if err != nil {
		return nil, err
	}
	if string(k2) != string(key) {
		return nil, fmt.Errorf("kvell: slot key mismatch")
	}
	return append([]byte(nil), v...), nil
}

// Put writes the slot in place (existing key) or allocates from the free
// list, then updates the index — one device access either way.
func (s *Store) Put(p *sim.Proc, key, val []byte) error {
	s.stats.Puts++
	s.o.puts.Inc()
	if slotHdr+int64(len(key))+int64(len(val)) > s.cfg.SlotBytes {
		return fmt.Errorf("kvell: object exceeds slot size %d", s.cfg.SlotBytes)
	}
	s.mu.Lock(p)
	s.cpu(p, s.cfg.Costs.IndexCycles)
	slot, exists := s.index.Get(string(key))
	if !exists {
		if s.cfg.MaxObjects > 0 && s.Objects() >= s.cfg.MaxObjects {
			s.stats.IndexRejects++
			s.o.indexRejects.Inc()
			s.mu.Unlock()
			return ErrFull
		}
		if len(s.free) == 0 {
			s.mu.Unlock()
			return ErrFull
		}
		slot = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.index.Put(string(key), slot)
	}
	s.mu.Unlock()
	buf := make([]byte, s.cfg.SlotBytes)
	marshalSlot(buf, key, val)
	s.cache.put(slot, buf)
	s.cpu(p, s.cfg.Costs.IOCycles)
	return s.io(p, flashsim.OpWrite, slot, buf)
}

// Del frees the slot and persists a cleared header (one device access).
func (s *Store) Del(p *sim.Proc, key []byte) error {
	s.stats.Dels++
	s.o.dels.Inc()
	s.mu.Lock(p)
	s.cpu(p, s.cfg.Costs.IndexCycles)
	slot, ok := s.index.Delete(string(key))
	if !ok {
		s.stats.NotFounds++
		s.o.notFounds.Inc()
		s.mu.Unlock()
		return core.ErrNotFound
	}
	s.free = append(s.free, slot)
	s.cache.drop(slot)
	s.mu.Unlock()
	buf := make([]byte, slotHdr)
	s.cpu(p, s.cfg.Costs.IOCycles)
	return s.io(p, flashsim.OpWrite, slot, buf)
}

func marshalSlot(buf, key, val []byte) {
	binary.LittleEndian.PutUint16(buf[0:], 0x5C0F)
	buf[2] = uint8(len(key))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(val)))
	copy(buf[slotHdr:], key)
	copy(buf[slotHdr+len(key):], val)
}

func parseSlot(buf []byte) (key, val []byte, err error) {
	if binary.LittleEndian.Uint16(buf[0:]) != 0x5C0F {
		return nil, nil, fmt.Errorf("kvell: empty or corrupt slot")
	}
	kl := int(buf[2])
	vl := int(binary.LittleEndian.Uint32(buf[4:]))
	if slotHdr+kl+vl > len(buf) {
		return nil, nil, fmt.Errorf("kvell: slot overflow")
	}
	return buf[slotHdr : slotHdr+kl], buf[slotHdr+kl : slotHdr+kl+vl], nil
}

// IndexDRAMPerObject is the modeled DRAM cost per indexed object: key
// bytes plus B-tree node overhead and free-list share.
func IndexDRAMPerObject(keyLen int) int64 { return int64(keyLen) + 40 }

// MaxCapacityFraction returns the fraction of raw flash KVell can use given
// a DRAM budget (Table 3's capacity row): the index (plus page cache
// reserve) must fit entirely in memory.
func MaxCapacityFraction(flashBytes, dramBudget int64, keyLen, valLen int) float64 {
	indexBudget := dramBudget * 85 / 100 // the rest: page cache + free lists
	byDRAM := indexBudget / IndexDRAMPerObject(keyLen)
	perSlot := slotHdr + int64(keyLen) + int64(valLen)
	byFlash := flashBytes / perSlot
	objs := byDRAM
	if byFlash < objs {
		objs = byFlash
	}
	return float64(objs*int64(keyLen+valLen)) / float64(flashBytes)
}
