package kvell

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/sim"
)

func TestBTreeBasic(t *testing.T) {
	bt := NewBTree()
	bt.Put("b", 2)
	bt.Put("a", 1)
	bt.Put("c", 3)
	if v, ok := bt.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	bt.Put("a", 10)
	if v, _ := bt.Get("a"); v != 10 {
		t.Fatalf("update lost: %d", v)
	}
	if bt.Len() != 3 {
		t.Fatalf("len = %d", bt.Len())
	}
	if v, ok := bt.Delete("b"); !ok || v != 2 {
		t.Fatalf("delete = %d, %v", v, ok)
	}
	if _, ok := bt.Get("b"); ok {
		t.Fatal("deleted key found")
	}
	if _, ok := bt.Delete("b"); ok {
		t.Fatal("double delete succeeded")
	}
	bt.Put("b", 22) // revive
	if v, _ := bt.Get("b"); v != 22 || bt.Len() != 3 {
		t.Fatalf("revive failed: %d len=%d", v, bt.Len())
	}
}

func TestBTreeManyKeysSplits(t *testing.T) {
	bt := NewBTree()
	const n = 10000
	for i := 0; i < n; i++ {
		bt.Put(fmt.Sprintf("key%08d", i), int64(i))
	}
	if bt.Len() != n {
		t.Fatalf("len = %d", bt.Len())
	}
	if bt.Depth() < 3 {
		t.Fatalf("depth = %d for 10k keys; splits not happening", bt.Depth())
	}
	for i := 0; i < n; i += 97 {
		if v, ok := bt.Get(fmt.Sprintf("key%08d", i)); !ok || v != int64(i) {
			t.Fatalf("key %d = %d, %v", i, v, ok)
		}
	}
}

func TestBTreeAscendSorted(t *testing.T) {
	bt := NewBTree()
	perm := rand.New(rand.NewSource(4)).Perm(500)
	for _, i := range perm {
		bt.Put(fmt.Sprintf("k%06d", i), int64(i))
	}
	bt.Delete("k000100")
	var keys []string
	bt.Ascend(func(k string, v int64) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 499 {
		t.Fatalf("ascend visited %d keys", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("ascend not in order")
	}
	for _, k := range keys {
		if k == "k000100" {
			t.Fatal("tombstone visited")
		}
	}
}

func TestBTreePropertyVsMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		model := map[string]int64{}
		for i := 0; i < 800; i++ {
			key := fmt.Sprintf("k%03d", rng.Intn(200))
			switch rng.Intn(10) {
			case 0, 1:
				_, okT := bt.Delete(key)
				_, okM := model[key]
				if okT != okM {
					return false
				}
				delete(model, key)
			default:
				v := rng.Int63n(1 << 40)
				bt.Put(key, v)
				model[key] = v
			}
		}
		if bt.Len() != len(model) {
			return false
		}
		for k, want := range model {
			if got, ok := bt.Get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func newTestStore(k sim.Runner, maxObjects int64) *Store {
	dev := flashsim.NewMemDevice(k, 8<<20)
	return New(Config{
		Kernel: k, Device: dev, SlotBytes: 512, NumSlots: 8192,
		MaxObjects: maxObjects,
	})
}

func run(k sim.Runner, fn func(p *sim.Proc)) {
	k.Go("test", fn)
	k.Run()
}

func TestKVellCRUD(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k, 0)
	run(k, func(p *sim.Proc) {
		if err := s.Put(p, []byte("k"), []byte("v1")); err != nil {
			t.Errorf("put: %v", err)
		}
		v, err := s.Get(p, []byte("k"))
		if err != nil || string(v) != "v1" {
			t.Errorf("get = %q, %v", v, err)
		}
		s.Put(p, []byte("k"), []byte("v2"))
		v, _ = s.Get(p, []byte("k"))
		if string(v) != "v2" {
			t.Errorf("in-place update lost: %q", v)
		}
		if err := s.Del(p, []byte("k")); err != nil {
			t.Errorf("del: %v", err)
		}
		if _, err := s.Get(p, []byte("k")); err != core.ErrNotFound {
			t.Errorf("get after del: %v", err)
		}
	})
}

func TestKVellSingleAccessPerOp(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 8<<20)
	s := New(Config{Kernel: k, Device: dev, SlotBytes: 512, NumSlots: 100})
	run(k, func(p *sim.Proc) {
		s.Put(p, []byte("k"), []byte("v"))
		if dev.Stats().Writes != 1 || dev.Stats().Reads != 0 {
			t.Errorf("PUT: %+v", dev.Stats())
		}
		s.Get(p, []byte("k"))
		if dev.Stats().Reads != 1 {
			t.Errorf("GET reads = %d", dev.Stats().Reads)
		}
	})
}

func TestKVellSlotReuse(t *testing.T) {
	k := sim.New()
	defer k.Close()
	dev := flashsim.NewMemDevice(k, 8<<20)
	s := New(Config{Kernel: k, Device: dev, SlotBytes: 512, NumSlots: 2})
	run(k, func(p *sim.Proc) {
		s.Put(p, []byte("a"), []byte("v"))
		s.Put(p, []byte("b"), []byte("v"))
		if err := s.Put(p, []byte("c"), []byte("v")); err != ErrFull {
			t.Errorf("3rd insert into 2 slots: %v", err)
		}
		s.Del(p, []byte("a"))
		if err := s.Put(p, []byte("c"), []byte("vc")); err != nil {
			t.Errorf("insert after free: %v", err)
		}
		v, err := s.Get(p, []byte("c"))
		if err != nil || string(v) != "vc" {
			t.Errorf("get c = %q, %v", v, err)
		}
	})
}

func TestKVellMaxObjectsBudget(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k, 5)
	run(k, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := s.Put(p, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		if err := s.Put(p, []byte("k9"), []byte("v")); err != ErrFull {
			t.Errorf("over-budget insert: %v", err)
		}
	})
	if s.Stats().IndexRejects != 1 {
		t.Fatalf("rejects = %d", s.Stats().IndexRejects)
	}
}

func TestKVellOversizedObjectRejected(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k, 0)
	run(k, func(p *sim.Proc) {
		if err := s.Put(p, []byte("k"), make([]byte, 600)); err == nil {
			t.Error("oversized object accepted into 512B slot")
		}
	})
}

func TestKVellModelCheck(t *testing.T) {
	k := sim.New()
	defer k.Close()
	s := newTestStore(k, 0)
	run(k, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(9))
		model := map[string]string{}
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("k%03d", rng.Intn(300))
			switch rng.Intn(10) {
			case 0, 1:
				errS := s.Del(p, []byte(key))
				_, had := model[key]
				if had != (errS == nil) {
					t.Errorf("del mismatch for %q: %v", key, errS)
					return
				}
				delete(model, key)
			default:
				val := fmt.Sprintf("v%d", i)
				if err := s.Put(p, []byte(key), []byte(val)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				model[key] = val
			}
		}
		for key, want := range model {
			v, err := s.Get(p, []byte(key))
			if err != nil || string(v) != want {
				t.Errorf("get %q = %q, %v", key, v, err)
				return
			}
		}
	})
}

func TestKVellCapacityFraction(t *testing.T) {
	// Table 3: KVell on the Stingray (8GB DRAM) can use only ~0.9%/2.6% of
	// the 3.84TB flash for 256B/1KB objects.
	flash := int64(4) * 960 << 30
	dram := int64(8) << 30
	f256 := MaxCapacityFraction(flash, dram, 16, 256)
	f1k := MaxCapacityFraction(flash, dram, 16, 1024)
	if f256 < 0.005 || f256 > 0.02 {
		t.Fatalf("256B = %.4f, want ~0.009", f256)
	}
	if f1k < 0.02 || f1k > 0.05 {
		t.Fatalf("1KB = %.4f, want ~0.026", f1k)
	}
}
