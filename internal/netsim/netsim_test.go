package netsim

import (
	"testing"

	"leed/internal/runtime"
	"leed/internal/sim"
)

func newPair(env runtime.Env, bps int64) (*Fabric, *Endpoint, *Endpoint) {
	f := New(env, Config{})
	a := f.AddNode(1, bps)
	b := f.AddNode(2, bps)
	return f, a, b
}

func TestSendDelivers(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, a, b := newPair(k, 100_000_000_000)
	var got *Message
	k.Spawn("rx", func(p runtime.Task) { got = b.RX().Get(p).(*Message) })
	a.Send(2, 1024, "hello")
	k.Run()
	if got == nil || got.Payload != "hello" || got.From != 1 {
		t.Fatalf("got = %+v", got)
	}
}

func TestLatencyModel(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, a, b := newPair(k, 100_000_000_000) // 100GbE
	var at runtime.Time
	k.Spawn("rx", func(p runtime.Task) {
		b.RX().Get(p)
		at = p.Now()
	})
	a.Send(2, 1024, nil)
	k.Run()
	// (1024+64)B at 12.5 GB/s twice (~87ns x2) + 1.5us propagation.
	if at < 1600 || at > 2100 {
		t.Fatalf("delivery at %v, want ~1.67us", at)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1GbE: 10 messages of 125KB each take ~10ms to drain the egress.
	k := sim.New()
	defer k.Close()
	_, a, b := newPair(k, 1_000_000_000)
	n := 0
	k.Spawn("rx", func(p runtime.Task) {
		for i := 0; i < 10; i++ {
			b.RX().Get(p)
			n++
		}
	})
	for i := 0; i < 10; i++ {
		a.Send(2, 125_000, i)
	}
	end := k.Run()
	if n != 10 {
		t.Fatalf("delivered %d", n)
	}
	if end < 10*runtime.Millisecond || end > 13*runtime.Millisecond {
		t.Fatalf("drain took %v, want ~10ms", end)
	}
}

func TestIncastQueuesAtReceiver(t *testing.T) {
	// Many fast senders into one receiver: deliveries serialize on the
	// receiver's ingress bandwidth.
	k := sim.New()
	defer k.Close()
	f := New(k, Config{})
	dst := f.AddNode(99, 1_000_000_000) // 1GbE receiver
	for i := 0; i < 8; i++ {
		src := f.AddNode(Addr(i), 100_000_000_000)
		src.Send(99, 125_000, i)
	}
	n := 0
	k.Spawn("rx", func(p runtime.Task) {
		for i := 0; i < 8; i++ {
			dst.RX().Get(p)
			n++
		}
	})
	end := k.Run()
	if n != 8 {
		t.Fatalf("delivered %d", n)
	}
	if end < 8*runtime.Millisecond {
		t.Fatalf("incast drained in %v; receiver bandwidth not enforced", end)
	}
}

func TestOneSidedWriteBypassesRXQueue(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, a, b := newPair(k, 100_000_000_000)
	ev := k.MakeEvent()
	a.Write(2, 256, "resp", ev)
	var got any
	k.Spawn("wait", func(p runtime.Task) {
		m := p.Wait(ev).(*Message)
		got = m.Payload
	})
	k.Run()
	if got != "resp" {
		t.Fatalf("got %v", got)
	}
	if b.RX().Len() != 0 {
		t.Fatal("one-sided write landed in RX queue")
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, a, b := newPair(k, 100_000_000_000)
	b.SetDown(true)
	a.Send(2, 100, nil)
	k.Run()
	if b.RX().Len() != 0 {
		t.Fatal("message delivered to down node")
	}
	if b.Stats().Dropped == 0 && a.Stats().TxMsgs != 1 {
		t.Fatalf("stats: a=%+v b=%+v", a.Stats(), b.Stats())
	}
	// Down sender transmits nothing.
	a.SetDown(true)
	a.Send(2, 100, nil)
	k.Run()
	if a.Stats().TxMsgs != 1 {
		t.Fatal("down sender transmitted")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, a, _ := newPair(k, 100_000_000_000)
	a.Send(42, 100, nil)
	k.Run()
	if a.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestStatsCounted(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, a, b := newPair(k, 100_000_000_000)
	a.Send(2, 1000, nil)
	k.Spawn("rx", func(p runtime.Task) { b.RX().Get(p) })
	k.Run()
	if a.Stats().TxBytes != 1064 || b.Stats().RxBytes != 1064 {
		t.Fatalf("a=%+v b=%+v", a.Stats(), b.Stats())
	}
}
