// Package netsim models the cluster's RDMA-capable Ethernet fabric: nodes
// with finite-bandwidth NICs connected through a non-blocking ToR switch
// with fixed propagation delay. Two primitives mirror LEED's hybrid verb
// use (§3.5): Send is a two-sided RDMA SEND that lands in the receiver's
// poll queue (consuming receiver CPU to pick up), and Write is a one-sided
// RDMA WRITE-with-IMM that completes directly into a completion event or
// queue without receiver CPU involvement.
//
// The fabric runs on any runtime.Env. On the sim kernel the delays are
// virtual and the schedule replays bit-identically; on the wallclock backend
// the same propagation and serialization delays become real timers, and a
// per-link sequence gate preserves FIFO delivery even when the OS fires two
// close timers out of order.
package netsim

import (
	"fmt"
	"sort"

	"leed/internal/obs"
	"leed/internal/runtime"
)

// Addr identifies one endpoint on the fabric.
type Addr uint32

// Message is one transfer. Payload is opaque to the fabric; Size is the
// modeled wire size in bytes.
type Message struct {
	From, To Addr
	Size     int64
	Payload  any
	// Complete, when non-nil, receives the message by event (one-sided
	// WRITE into the sender-registered completion structure). Otherwise
	// the message lands in the destination's RX queue.
	Complete runtime.Event
	Sent     runtime.Time
	// Trace, when non-nil, accumulates this message's "net" span (NIC
	// serialization waits vs wire time) as it crosses the fabric. The
	// trace rides the message the way a carried correlation ID would.
	Trace *obs.Trace
}

// Config tunes the fabric.
type Config struct {
	// Propagation is the one-way switch+wire delay. Default 1.5us.
	Propagation runtime.Time
	// MsgOverheadBytes is added to every message's wire size (headers).
	// Default 64.
	MsgOverheadBytes int64
}

// Fabric is the network. All endpoints share one non-blocking switch.
// All fabric state is protected by the runtime execution contract: transmit
// and delivery run in task or scheduler context only.
type Fabric struct {
	env    runtime.Env
	cfg    Config
	nodes  map[Addr]*Endpoint
	faults *Faults // nil unless InstallFaults was called

	// Per-link FIFO delivery gate. The sim kernel delivers same-time events
	// in schedule order, so per-link arrival monotonicity is enough there;
	// wallclock timers carry no such guarantee, so each surviving message
	// takes a sequence number at send time and delivery is released strictly
	// in sequence order per directed link.
	sendSeq     map[link]uint64
	nextDeliver map[link]uint64
	held        map[link]map[uint64]func()

	o *fabObs // nil unless Observe was called
}

// fabObs is the fabric's registry binding: fabric-wide traffic counters and
// per-message "net" stage observations. Nil receiver methods no-op.
type fabObs struct {
	tr               *obs.Tracer
	txMsgs, rxMsgs   *obs.Counter
	txBytes, rxBytes *obs.Counter
	dropped          *obs.Counter
}

func (o *fabObs) tx(size int64) {
	if o == nil {
		return
	}
	o.txMsgs.Inc()
	o.txBytes.Add(size)
}

func (o *fabObs) rx(size int64) {
	if o == nil {
		return
	}
	o.rxMsgs.Inc()
	o.rxBytes.Add(size)
}

func (o *fabObs) drop() {
	if o == nil {
		return
	}
	o.dropped.Inc()
}

// span attributes one delivery to the "net" stage: into the message's trace
// when it carries one (the trace's End aggregates it), directly into the
// tracer otherwise — never both, so stage histograms count each message
// once.
func (o *fabObs) span(m *Message, queue, service runtime.Time) {
	if m.Trace != nil {
		m.Trace.Span("net", queue, service)
		return
	}
	if o != nil {
		o.tr.Observe("net", queue, service)
	}
}

// Observe binds the fabric to a metrics registry and tracer: traffic
// counters land in leed_net_* series and every delivered message
// contributes a "net" stage observation. Call before traffic starts.
func (f *Fabric) Observe(reg *obs.Registry, tr *obs.Tracer) {
	f.o = &fabObs{
		tr:      tr,
		txMsgs:  reg.Counter("leed_net_tx_msgs_total"),
		rxMsgs:  reg.Counter("leed_net_rx_msgs_total"),
		txBytes: reg.Counter("leed_net_tx_bytes_total"),
		rxBytes: reg.Counter("leed_net_rx_bytes_total"),
		dropped: reg.Counter("leed_net_dropped_total"),
	}
}

// New creates a fabric on env.
func New(env runtime.Env, cfg Config) *Fabric {
	if cfg.Propagation == 0 {
		cfg.Propagation = 1500 * runtime.Nanosecond
	}
	if cfg.MsgOverheadBytes == 0 {
		cfg.MsgOverheadBytes = 64
	}
	return &Fabric{
		env:         env,
		cfg:         cfg,
		nodes:       make(map[Addr]*Endpoint),
		sendSeq:     make(map[link]uint64),
		nextDeliver: make(map[link]uint64),
		held:        make(map[link]map[uint64]func()),
	}
}

// Env returns the runtime environment the fabric runs on.
func (f *Fabric) Env() runtime.Env { return f.env }

// at schedules fn at absolute time when (clamped to now), in scheduler
// context.
func (f *Fabric) at(when runtime.Time, fn func()) {
	f.env.After(when-f.env.Now(), fn)
}

// Stats are per-endpoint counters.
type Stats struct {
	TxMsgs, RxMsgs   int64
	TxBytes, RxBytes int64
	Dropped          int64
}

// Endpoint is one NIC on the fabric.
type Endpoint struct {
	addr        Addr
	fab         *Fabric
	bytesPerSec int64
	txFree      runtime.Time // egress link free-at time
	rxFree      runtime.Time // ingress link free-at time
	rx          runtime.Queue
	orphans     []runtime.Queue // queues abandoned by ResetRX, kept for Flood
	down        bool
	stats       Stats
}

// AddNode registers an endpoint with the given NIC speed in bits/sec.
func (f *Fabric) AddNode(addr Addr, bitsPerS int64) *Endpoint {
	if _, dup := f.nodes[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate addr %d", addr))
	}
	e := &Endpoint{
		addr:        addr,
		fab:         f,
		bytesPerSec: bitsPerS / 8,
		rx:          f.env.MakeQueue(),
	}
	f.nodes[addr] = e
	return e
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// RX returns the two-sided receive queue that polling cores drain. Items are
// *Message.
func (e *Endpoint) RX() runtime.Queue { return e.rx }

// ResetRX abandons the receive queue and installs a fresh empty one,
// modeling DRAM loss on a crash: packets queued but not yet polled vanish,
// and pollers parked on the old queue are orphaned with it. The old queue is
// remembered so Flood can still reach pollers parked on it.
func (e *Endpoint) ResetRX() {
	e.orphans = append(e.orphans, e.rx)
	e.rx = e.fab.env.MakeQueue()
}

// Stats returns cumulative counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// SetDown marks the endpoint dead (fail-stop): all traffic to it is
// dropped, and its sends are suppressed.
func (e *Endpoint) SetDown(down bool) { e.down = down }

// Down reports the endpoint's fail-stop state.
func (e *Endpoint) Down() bool { return e.down }

// Flood puts a message carrying payload into every endpoint's RX queue —
// live and orphaned alike, in address order. It is the shutdown broadcast:
// a poison pill Flooded through the fabric reaches every parked poller, so a
// wallclock deployment can be wound down without leaking blocked tasks.
// Must run in task or scheduler context.
func (f *Fabric) Flood(payload any) {
	addrs := make([]Addr, 0, len(f.nodes))
	for a := range f.nodes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		e := f.nodes[a]
		e.rx.Put(&Message{To: a, Payload: payload})
		for _, q := range e.orphans {
			q.Put(&Message{To: a, Payload: payload})
		}
	}
}

// deliver releases the delivery action for message seq on link l strictly in
// sequence order. fn == nil consumes the sequence number without delivering
// (the message died after taking its number, e.g. destination went down).
func (f *Fabric) deliver(l link, seq uint64, fn func()) {
	if seq != f.nextDeliver[l] {
		h := f.held[l]
		if h == nil {
			h = make(map[uint64]func())
			f.held[l] = h
		}
		h[seq] = fn
		return
	}
	for {
		if fn != nil {
			fn()
		}
		f.nextDeliver[l]++
		h := f.held[l]
		next, ok := h[f.nextDeliver[l]]
		if !ok {
			return
		}
		delete(h, f.nextDeliver[l])
		fn = next
	}
}

// transmit models serialization on the sender egress, propagation, and
// serialization on the receiver ingress, then delivers in per-link FIFO
// order.
func (e *Endpoint) transmit(m *Message) {
	if e.down {
		return
	}
	f := e.fab
	m.Sent = f.env.Now()
	size := m.Size + f.cfg.MsgOverheadBytes
	e.stats.TxMsgs++
	e.stats.TxBytes += size
	f.o.tx(size)

	txStart := f.env.Now()
	if e.txFree > txStart {
		txStart = e.txFree
	}
	txWait := txStart - m.Sent // egress serialization queue
	txDur := runtime.Time(size * int64(runtime.Second) / e.bytesPerSec)
	e.txFree = txStart + txDur

	dst, ok := f.nodes[m.To]
	if !ok {
		e.stats.Dropped++
		f.o.drop()
		return
	}
	arrive := e.txFree + f.cfg.Propagation
	if fl := f.faults; fl != nil {
		var lost bool
		arrive, lost = fl.apply(e.addr, m.To, arrive)
		if lost {
			e.stats.Dropped++
			f.o.drop()
			return
		}
	}
	// Fault-dropped messages never take a sequence number, so the FIFO gate
	// tracks only traffic that is actually in flight.
	l := link{e.addr, m.To}
	seq := f.sendSeq[l]
	f.sendSeq[l]++
	f.at(arrive, func() {
		if dst.down {
			dst.stats.Dropped++
			f.o.drop()
			f.deliver(l, seq, nil)
			return
		}
		arrived := f.env.Now()
		rxStart := arrived
		if dst.rxFree > rxStart {
			rxStart = dst.rxFree
		}
		rxWait := rxStart - arrived // ingress serialization queue
		rxDur := runtime.Time(size * int64(runtime.Second) / dst.bytesPerSec)
		dst.rxFree = rxStart + rxDur
		f.at(dst.rxFree, func() {
			f.deliver(l, seq, func() {
				if dst.down {
					dst.stats.Dropped++
					f.o.drop()
					return
				}
				dst.stats.RxMsgs++
				dst.stats.RxBytes += size
				f.o.rx(size)
				// Queue = time spent waiting for a NIC slot on either end;
				// service = everything else on the wire (serialization,
				// propagation, any fault-injected delay).
				queue := txWait + rxWait
				f.o.span(m, queue, f.env.Now()-m.Sent-queue)
				if m.Complete != nil {
					m.Complete.Fire(m)
					return
				}
				dst.rx.Put(m)
			})
		})
	})
}

// Send issues a two-sided SEND: the message lands in the destination's RX
// queue, to be picked up by a polling core.
func (e *Endpoint) Send(to Addr, size int64, payload any) {
	e.transmit(&Message{From: e.addr, To: to, Size: size, Payload: payload})
}

// SendTraced is Send with a trace riding the message: the fabric appends
// the "net" span to tr at delivery.
func (e *Endpoint) SendTraced(to Addr, size int64, payload any, tr *obs.Trace) {
	e.transmit(&Message{From: e.addr, To: to, Size: size, Payload: payload, Trace: tr})
}

// Write issues a one-sided WRITE with IMM: the message completes into the
// given event at the destination, bypassing the destination's poll loop.
func (e *Endpoint) Write(to Addr, size int64, payload any, complete runtime.Event) {
	e.transmit(&Message{From: e.addr, To: to, Size: size, Payload: payload, Complete: complete})
}

// WriteTraced is Write with a trace riding the message, used for the
// response leg of a traced request.
func (e *Endpoint) WriteTraced(to Addr, size int64, payload any, complete runtime.Event, tr *obs.Trace) {
	e.transmit(&Message{From: e.addr, To: to, Size: size, Payload: payload, Complete: complete, Trace: tr})
}
