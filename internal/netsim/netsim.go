// Package netsim models the cluster's RDMA-capable Ethernet fabric: nodes
// with finite-bandwidth NICs connected through a non-blocking ToR switch
// with fixed propagation delay. Two primitives mirror LEED's hybrid verb
// use (§3.5): Send is a two-sided RDMA SEND that lands in the receiver's
// poll queue (consuming receiver CPU to pick up), and Write is a one-sided
// RDMA WRITE-with-IMM that completes directly into a completion event or
// queue without receiver CPU involvement.
package netsim

import (
	"fmt"

	"leed/internal/sim"
)

// Addr identifies one endpoint on the fabric.
type Addr uint32

// Message is one transfer. Payload is opaque to the fabric; Size is the
// modeled wire size in bytes.
type Message struct {
	From, To Addr
	Size     int64
	Payload  any
	// Complete, when non-nil, receives the message by event (one-sided
	// WRITE into the sender-registered completion structure). Otherwise
	// the message lands in the destination's RX queue.
	Complete *sim.Event
	Sent     sim.Time
}

// Config tunes the fabric.
type Config struct {
	// Propagation is the one-way switch+wire delay. Default 1.5us.
	Propagation sim.Time
	// MsgOverheadBytes is added to every message's wire size (headers).
	// Default 64.
	MsgOverheadBytes int64
}

// Fabric is the network. All endpoints share one non-blocking switch.
type Fabric struct {
	k      *sim.Kernel
	cfg    Config
	nodes  map[Addr]*Endpoint
	faults *Faults // nil unless InstallFaults was called
}

// New creates a fabric on k.
func New(k *sim.Kernel, cfg Config) *Fabric {
	if cfg.Propagation == 0 {
		cfg.Propagation = 1500 * sim.Nanosecond
	}
	if cfg.MsgOverheadBytes == 0 {
		cfg.MsgOverheadBytes = 64
	}
	return &Fabric{k: k, cfg: cfg, nodes: make(map[Addr]*Endpoint)}
}

// Stats are per-endpoint counters.
type Stats struct {
	TxMsgs, RxMsgs   int64
	TxBytes, RxBytes int64
	Dropped          int64
}

// Endpoint is one NIC on the fabric.
type Endpoint struct {
	addr        Addr
	fab         *Fabric
	bytesPerSec int64
	txFree      sim.Time // egress link free-at time
	rxFree      sim.Time // ingress link free-at time
	rx          *sim.Queue[*Message]
	down        bool
	stats       Stats
}

// AddNode registers an endpoint with the given NIC speed in bits/sec.
func (f *Fabric) AddNode(addr Addr, bitsPerS int64) *Endpoint {
	if _, dup := f.nodes[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate addr %d", addr))
	}
	e := &Endpoint{
		addr:        addr,
		fab:         f,
		bytesPerSec: bitsPerS / 8,
		rx:          sim.NewQueue[*Message](f.k),
	}
	f.nodes[addr] = e
	return e
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// RX returns the two-sided receive queue that polling cores drain.
func (e *Endpoint) RX() *sim.Queue[*Message] { return e.rx }

// ResetRX abandons the receive queue and installs a fresh empty one,
// modeling DRAM loss on a crash: packets queued but not yet polled vanish,
// and pollers parked on the old queue are orphaned with it.
func (e *Endpoint) ResetRX() { e.rx = sim.NewQueue[*Message](e.fab.k) }

// Stats returns cumulative counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// SetDown marks the endpoint dead (fail-stop): all traffic to it is
// dropped, and its sends are suppressed.
func (e *Endpoint) SetDown(down bool) { e.down = down }

// Down reports the endpoint's fail-stop state.
func (e *Endpoint) Down() bool { return e.down }

// transmit models serialization on the sender egress, propagation, and
// serialization on the receiver ingress, then delivers.
func (e *Endpoint) transmit(m *Message) {
	if e.down {
		return
	}
	k := e.fab.k
	m.Sent = k.Now()
	size := m.Size + e.fab.cfg.MsgOverheadBytes
	e.stats.TxMsgs++
	e.stats.TxBytes += size

	txStart := k.Now()
	if e.txFree > txStart {
		txStart = e.txFree
	}
	txDur := sim.Time(size * int64(sim.Second) / e.bytesPerSec)
	e.txFree = txStart + txDur

	dst, ok := e.fab.nodes[m.To]
	if !ok {
		e.stats.Dropped++
		return
	}
	arrive := e.txFree + e.fab.cfg.Propagation
	if fl := e.fab.faults; fl != nil {
		var lost bool
		arrive, lost = fl.apply(e.addr, m.To, arrive)
		if lost {
			e.stats.Dropped++
			return
		}
	}
	k.At(arrive, func() {
		if dst.down {
			dst.stats.Dropped++
			return
		}
		rxStart := k.Now()
		if dst.rxFree > rxStart {
			rxStart = dst.rxFree
		}
		rxDur := sim.Time(size * int64(sim.Second) / dst.bytesPerSec)
		dst.rxFree = rxStart + rxDur
		k.At(dst.rxFree, func() {
			if dst.down {
				dst.stats.Dropped++
				return
			}
			dst.stats.RxMsgs++
			dst.stats.RxBytes += size
			if m.Complete != nil {
				m.Complete.Fire(m)
				return
			}
			dst.rx.Put(m)
		})
	})
}

// Send issues a two-sided SEND: the message lands in the destination's RX
// queue, to be picked up by a polling core.
func (e *Endpoint) Send(to Addr, size int64, payload any) {
	e.transmit(&Message{From: e.addr, To: to, Size: size, Payload: payload})
}

// Write issues a one-sided WRITE with IMM: the message completes into the
// given event at the destination, bypassing the destination's poll loop.
func (e *Endpoint) Write(to Addr, size int64, payload any, complete *sim.Event) {
	e.transmit(&Message{From: e.addr, To: to, Size: size, Payload: payload, Complete: complete})
}
