package netsim

import (
	"testing"

	"leed/internal/runtime"
	"leed/internal/sim"
)

// drainInto keeps a task pulling b's RX queue into got.
func drainInto(env runtime.Env, b *Endpoint, got *[]any) {
	env.Spawn("rx", func(p runtime.Task) {
		for {
			m := b.RX().Get(p).(*Message)
			*got = append(*got, m.Payload)
		}
	})
}

func TestPartitionDropsBothDirections(t *testing.T) {
	k := sim.New()
	defer k.Close()
	f, a, b := newPair(k, 100_000_000_000)
	fl := f.InstallFaults(1)
	fl.Partition(1, 2)

	var gotA, gotB []any
	drainInto(k, a, &gotA)
	drainInto(k, b, &gotB)
	a.Send(2, 100, "a->b")
	b.Send(1, 100, "b->a")
	k.Run(runtime.Millisecond)
	if len(gotA) != 0 || len(gotB) != 0 {
		t.Fatalf("partitioned link delivered: a=%v b=%v", gotA, gotB)
	}
	if fl.Stats().DroppedByPartition != 2 {
		t.Fatalf("stats = %+v", fl.Stats())
	}
	if !fl.Partitioned(2, 1) {
		t.Fatal("partition not symmetric")
	}
}

func TestPartitionThenHealDeliverySemantics(t *testing.T) {
	// Messages sent while partitioned are lost for good — healing must not
	// resurrect them — and messages sent after the heal flow normally.
	k := sim.New()
	defer k.Close()
	f, a, b := newPair(k, 100_000_000_000)
	fl := f.InstallFaults(1)

	var got []any
	drainInto(k, b, &got)

	a.Send(2, 100, "before")
	k.Run(k.Now() + runtime.Millisecond)
	fl.Partition(1, 2)
	a.Send(2, 100, "during-1")
	a.Send(2, 100, "during-2")
	k.Run(k.Now() + runtime.Millisecond)
	fl.Heal(1, 2)
	a.Send(2, 100, "after")
	k.Run(k.Now() + runtime.Millisecond)

	if len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Fatalf("delivered %v, want [before after]", got)
	}
	if fl.Stats().DroppedByPartition != 2 {
		t.Fatalf("stats = %+v", fl.Stats())
	}
}

func TestDropProbabilityIsSeededAndDirected(t *testing.T) {
	run := func(seed int64) (delivered int, dropped int64) {
		k := sim.New()
		defer k.Close()
		f, a, b := newPair(k, 100_000_000_000)
		fl := f.InstallFaults(seed)
		fl.SetDrop(1, 2, 0.5)
		var got []any
		drainInto(k, b, &got)
		for i := 0; i < 200; i++ {
			a.Send(2, 100, i)
		}
		k.Run(k.Now() + runtime.Second)
		return len(got), fl.Stats().DroppedByLoss
	}
	d1, l1 := run(7)
	d2, l2 := run(7)
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, l1, d2, l2)
	}
	if l1 == 0 || d1 == 0 {
		t.Fatalf("rate 0.5 over 200 msgs: delivered=%d dropped=%d", d1, l1)
	}
	if d1+int(l1) != 200 {
		t.Fatalf("delivered %d + dropped %d != 200", d1, l1)
	}

	// The reverse direction is unaffected.
	k := sim.New()
	defer k.Close()
	f, a, b := newPair(k, 100_000_000_000)
	f.InstallFaults(7).SetDrop(1, 2, 1.0)
	var got []any
	drainInto(k, a, &got)
	for i := 0; i < 20; i++ {
		b.Send(1, 100, i)
	}
	k.Run(k.Now() + runtime.Second)
	if len(got) != 20 {
		t.Fatalf("reverse direction lost messages: %d/20", len(got))
	}
	_ = a
}

func TestExtraDelaySlowsButPreservesOrder(t *testing.T) {
	// A delay fault that is cleared mid-stream must not let later messages
	// overtake earlier ones: links deliver FIFO, like an RDMA RC QP.
	k := sim.New()
	defer k.Close()
	f, a, b := newPair(k, 100_000_000_000)
	fl := f.InstallFaults(1)

	var got []any
	var times []runtime.Time
	k.Spawn("rx", func(p runtime.Task) {
		for {
			m := b.RX().Get(p).(*Message)
			got = append(got, m.Payload)
			times = append(times, p.Now())
		}
	})

	fl.SetDelay(1, 2, 5*runtime.Millisecond)
	a.Send(2, 100, "slow")
	k.Run(k.Now() + 10*runtime.Microsecond) // schedule, then clear the fault
	fl.SetDelay(1, 2, 0)
	a.Send(2, 100, "fast")
	k.Run(k.Now() + 20*runtime.Millisecond)

	if len(got) != 2 {
		t.Fatalf("delivered %d messages", len(got))
	}
	if got[0] != "slow" || got[1] != "fast" {
		t.Fatalf("reordered delivery: %v", got)
	}
	if times[0] < 5*runtime.Millisecond {
		t.Fatalf("delay fault not applied: first delivery at %v", times[0])
	}
	if fl.Stats().Delayed != 1 {
		t.Fatalf("stats = %+v", fl.Stats())
	}
}

func TestHealAllClearsEveryFault(t *testing.T) {
	k := sim.New()
	defer k.Close()
	f, a, b := newPair(k, 100_000_000_000)
	fl := f.InstallFaults(3)
	fl.Partition(1, 2)
	fl.SetDropBoth(1, 2, 1.0)
	fl.SetDelay(1, 2, runtime.Millisecond)
	fl.HealAll()

	var got []any
	drainInto(k, b, &got)
	a.Send(2, 100, "ok")
	k.Run(k.Now() + runtime.Millisecond)
	if len(got) != 1 {
		t.Fatal("HealAll did not restore the link")
	}
}

func TestIsolateSeversAllListedPeers(t *testing.T) {
	k := sim.New()
	defer k.Close()
	f := New(k, Config{})
	a := f.AddNode(1, 100_000_000_000)
	f.AddNode(2, 100_000_000_000)
	f.AddNode(3, 100_000_000_000)
	fl := f.InstallFaults(1)
	fl.Isolate(1, 2, 3, 1) // own addr is skipped
	if !fl.Partitioned(1, 2) || !fl.Partitioned(3, 1) {
		t.Fatal("isolate missed a peer")
	}
	if fl.Partitioned(2, 3) {
		t.Fatal("isolate severed an unrelated pair")
	}
	_ = a
}

func TestResetRXDiscardsQueuedMessages(t *testing.T) {
	k := sim.New()
	defer k.Close()
	_, a, b := newPair(k, 100_000_000_000)
	a.Send(2, 100, "lost-with-dram")
	k.Run(k.Now() + runtime.Millisecond)
	if b.RX().Len() != 1 {
		t.Fatalf("queued %d", b.RX().Len())
	}
	b.ResetRX()
	if b.RX().Len() != 0 {
		t.Fatal("queue survived reset")
	}
	// New traffic lands in the fresh queue.
	a.Send(2, 100, "post-restart")
	k.Run(k.Now() + runtime.Millisecond)
	if b.RX().Len() != 1 {
		t.Fatal("fresh queue not receiving")
	}
}
