package netsim

import (
	"math/rand"
	"sync/atomic"

	"leed/internal/runtime"
)

// Faults is the fabric's fault-injection layer: per-directed-link message
// loss and extra delay, and two-way partitions that can heal. All decisions
// draw from one seeded stream, so a fault schedule replays bit-identically
// on the sim kernel — the substrate the chaos drills' determinism rests on.
//
// The layer also enforces per-link FIFO delivery. The base fabric is FIFO
// already (egress and ingress serialization are monotone, and the fabric's
// sequence gate holds on wallclock), but a delay fault that shrinks
// mid-flight could reorder messages on a link; RDMA reliable connections
// deliver in order per QP, so the clamp keeps the model honest and spares
// the chain protocol from reorderings real NICs never produce.
//
// The maps and rng are protected by the runtime execution contract (apply
// and the Set* methods run in task or scheduler context); the stats counters
// are atomics so Stats can be read from any goroutine on the wallclock
// backend, e.g. by a test or monitor polling while a drill runs.
type Faults struct {
	rng *rand.Rand

	drop        map[link]float64
	delay       map[link]runtime.Time
	partitioned map[pair]bool
	lastArrive  map[link]runtime.Time

	droppedByLoss      atomic.Int64
	droppedByPartition atomic.Int64
	delayed            atomic.Int64
}

// FaultStats count fault-layer decisions.
type FaultStats struct {
	DroppedByLoss      int64 // messages dropped by a probabilistic link fault
	DroppedByPartition int64 // messages dropped by an active partition
	Delayed            int64 // messages that received extra link delay
}

// link is one directed edge of the fabric.
type link struct{ from, to Addr }

// pair is an unordered node pair (two-way partitions).
type pair struct{ a, b Addr }

func pairOf(a, b Addr) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a: a, b: b}
}

// InstallFaults attaches a seeded fault layer to the fabric and returns it.
// Installing twice replaces the previous layer.
func (f *Fabric) InstallFaults(seed int64) *Faults {
	f.faults = &Faults{
		rng:         rand.New(rand.NewSource(seed)),
		drop:        make(map[link]float64),
		delay:       make(map[link]runtime.Time),
		partitioned: make(map[pair]bool),
		lastArrive:  make(map[link]runtime.Time),
	}
	return f.faults
}

// Faults returns the installed fault layer, or nil.
func (f *Fabric) Faults() *Faults { return f.faults }

// Stats returns cumulative fault counters. Safe from any goroutine.
func (fl *Faults) Stats() FaultStats {
	return FaultStats{
		DroppedByLoss:      fl.droppedByLoss.Load(),
		DroppedByPartition: fl.droppedByPartition.Load(),
		Delayed:            fl.delayed.Load(),
	}
}

// SetDrop sets the loss probability for the directed link from -> to.
// p = 0 clears the fault.
func (fl *Faults) SetDrop(from, to Addr, p float64) {
	if p <= 0 {
		delete(fl.drop, link{from, to})
		return
	}
	fl.drop[link{from, to}] = p
}

// SetDropBoth sets the loss probability in both directions between a and b.
func (fl *Faults) SetDropBoth(a, b Addr, p float64) {
	fl.SetDrop(a, b, p)
	fl.SetDrop(b, a, p)
}

// SetDelay adds d of extra one-way delay on the directed link from -> to.
// d = 0 clears the fault.
func (fl *Faults) SetDelay(from, to Addr, d runtime.Time) {
	if d <= 0 {
		delete(fl.delay, link{from, to})
		return
	}
	fl.delay[link{from, to}] = d
}

// Partition severs the a<->b link in both directions until Heal.
func (fl *Faults) Partition(a, b Addr) { fl.partitioned[pairOf(a, b)] = true }

// Heal restores the a<->b link. Messages dropped while partitioned are
// gone — the fabric does not queue across a partition.
func (fl *Faults) Heal(a, b Addr) { delete(fl.partitioned, pairOf(a, b)) }

// Partitioned reports whether a<->b is currently severed.
func (fl *Faults) Partitioned(a, b Addr) bool { return fl.partitioned[pairOf(a, b)] }

// Isolate partitions a from every peer in peers.
func (fl *Faults) Isolate(a Addr, peers ...Addr) {
	for _, p := range peers {
		if p != a {
			fl.Partition(a, p)
		}
	}
}

// HealAll clears every active fault: partitions, loss rates, and delays.
// The FIFO clamp state is kept so healing never reorders in-flight traffic.
func (fl *Faults) HealAll() {
	fl.partitioned = make(map[pair]bool)
	fl.drop = make(map[link]float64)
	fl.delay = make(map[link]runtime.Time)
}

// apply runs one message through the fault layer: it returns the (possibly
// delayed, FIFO-clamped) arrival time, or drop=true if the message is lost.
// The rng advances only for links with an active loss fault, so adding a
// fault on one link never perturbs the schedule of the others.
func (fl *Faults) apply(from, to Addr, arrive runtime.Time) (runtime.Time, bool) {
	if fl.partitioned[pairOf(from, to)] {
		fl.droppedByPartition.Add(1)
		return 0, true
	}
	l := link{from, to}
	if p, ok := fl.drop[l]; ok {
		if fl.rng.Float64() < p {
			fl.droppedByLoss.Add(1)
			return 0, true
		}
	}
	if d, ok := fl.delay[l]; ok {
		arrive += d
		fl.delayed.Add(1)
	}
	if last := fl.lastArrive[l]; arrive < last {
		arrive = last
	}
	fl.lastArrive[l] = arrive
	return arrive, false
}
