package netsim

import (
	"testing"
	"time"

	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
)

// TestFaultStatsRaceSafeOnWallclock is the -race regression for the fault
// layer's counters: a monitor goroutine polls Faults.Stats while seeded
// drops and delays are being applied from timer and task context on the
// wallclock backend. Before the counters became atomics this was a data
// race; now the only requirement is that the final tallies add up.
func TestFaultStatsRaceSafeOnWallclock(t *testing.T) {
	env := wallclock.New()
	f, a, b := newPair(env, 100_000_000_000)
	fl := f.InstallFaults(11)
	fl.SetDrop(1, 2, 0.5)
	fl.SetDelay(2, 1, 20*runtime.Microsecond)

	const msgs = 200
	delivered := 0
	env.Spawn("rx", func(p runtime.Task) {
		for {
			m := b.RX().Get(p).(*Message)
			if m.Payload == "stop" {
				return
			}
			delivered++
			// Exercise the delayed reverse link too.
			b.Send(1, 64, m.Payload)
		}
	})
	env.Spawn("rx-rev", func(p runtime.Task) {
		for {
			if m := a.RX().Get(p).(*Message); m.Payload == "stop" {
				return
			}
		}
	})
	env.Spawn("tx", func(p runtime.Task) {
		for i := 0; i < msgs; i++ {
			a.Send(2, 128, i)
			p.Sleep(10 * runtime.Microsecond)
		}
		// Drain window, then heal so the shutdown marker cannot be dropped.
		p.Sleep(5 * runtime.Millisecond)
		fl.HealAll()
		a.Send(2, 64, "stop")
		b.Send(1, 64, "stop")
	})

	// The point of the test: concurrent Stats polling from a plain
	// goroutine while the fault layer mutates its counters.
	stop := make(chan struct{})
	go func() { env.Wait(); close(stop) }()
	var last FaultStats
	for polls := 0; ; polls++ {
		select {
		case <-stop:
			last = fl.Stats()
			if delivered+int(last.DroppedByLoss) != msgs {
				t.Errorf("delivered %d + dropped %d != %d sent", delivered, last.DroppedByLoss, msgs)
			}
			if last.DroppedByLoss == 0 {
				t.Error("loss fault never engaged")
			}
			if last.Delayed == 0 {
				t.Error("delay fault never engaged")
			}
			return
		default:
			_ = fl.Stats()
			time.Sleep(100 * time.Microsecond)
		}
	}
}
