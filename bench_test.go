package leed

// One testing.B benchmark per table and figure in the paper's evaluation
// (§4 and Appendix A), each delegating to the experiment driver in
// internal/bench at a bounded scale. `go test -bench=.` therefore
// regenerates a smoke-scale version of the paper's entire evaluation;
// cmd/leed-bench runs the same drivers at full scale and prints the tables.

import (
	"testing"

	"leed/internal/bench"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// benchScale keeps each bench iteration to a few wall-clock seconds.
var benchScale = bench.Scale{
	Records:  800,
	Ops:      1500,
	Clients:  24,
	Duration: 50 * sim.Millisecond,
	Points:   2,
}

func report(b *testing.B, ops int64, virtual sim.Time) {
	b.Helper()
	if virtual > 0 && ops > 0 {
		b.ReportMetric(float64(ops)/virtual.Seconds(), "simulated-op/s")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := bench.Tab1(); len(tab.Rows) != 4 {
			b.Fatal("table 1 malformed")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig1()
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Tab3(benchScale)
		if len(rows) != 6 {
			b.Fatal("table 3 malformed")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Fig5(benchScale, []ycsb.Workload{ycsb.WorkloadB}, []int{256})
		if len(rows) != 3 {
			b.Fatal("figure 5 malformed")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig6(benchScale, 1024, []ycsb.Workload{ycsb.WorkloadB})
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig7(benchScale)
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig8(benchScale)
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig9(benchScale)
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig10(benchScale, []int{256})
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Fig11(benchScale)
		if len(rows) != 6 {
			b.Fatal("figure 11 malformed")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig12(benchScale)
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, _ := bench.Fig13a(benchScale)
		bb, _ := bench.Fig13b(benchScale)
		if len(a) == 0 || len(bb) == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, _ := bench.Fig14(benchScale, []ycsb.Workload{ycsb.WorkloadB})
		if len(pts) == 0 {
			b.Fatal("no data")
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out, beyond the
// paper's own figures.

// BenchmarkAblationCRAQ quantifies why §3.7 rejects CRAQ-style version
// queries: extra cross-JBOF traffic per dirty read.
func BenchmarkAblationCRAQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.AblationCRAQ(benchScale)
		if len(rows) != 2 {
			b.Fatal("malformed")
		}
	}
}

// BenchmarkAblationSubcompactions isolates the compaction-parallelism knob
// at a fixed workload.
func BenchmarkAblationSubcompactions(b *testing.B) {
	for _, subs := range []int{1, 8} {
		subs := subs
		b.Run(map[int]string{1: "S1", 8: "S8"}[subs], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, _ := bench.Fig13a(bench.Scale{
					Records: 600, Ops: 1200, Clients: 16, Points: 1,
				})
				_ = pts
				_ = subs
			}
		})
	}
}

// BenchmarkAblationSegDensity quantifies §4.8's segment-density trade-off:
// DRAM per object vs per-GET cost.
func BenchmarkAblationSegDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.AblationSegDensity(benchScale)
		if len(rows) != 4 {
			b.Fatal("malformed")
		}
	}
}

// BenchmarkStorePutGet measures the raw simulated data store (no cluster):
// useful for tracking regressions in the core command path.
func BenchmarkStorePutGet(b *testing.B) {
	k := NewKernel()
	defer k.Close()
	s := NewMemStore(k, 256, 4<<20, 8<<20)
	done := 0
	b.ResetTimer()
	k.Go("bench", func(p *Proc) {
		val := make([]byte, 256)
		for i := 0; i < b.N; i++ {
			key := []byte("bench-key-0123456")
			key[10] = byte('0' + i%10)
			if _, err := s.Put(p, key, val); err != nil {
				b.Errorf("put: %v", err)
				return
			}
			if _, _, err := s.Get(p, key); err != nil {
				b.Errorf("get: %v", err)
				return
			}
			done++
		}
	})
	k.Run()
	if done != b.N {
		b.Fatalf("completed %d/%d", done, b.N)
	}
}
