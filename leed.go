// Package leed is the public facade of this repository: a reproduction of
// "LEED: A Low-Power, Fast Persistent Key-Value Store on SmartNIC JBOFs"
// (SIGCOMM 2023) — a KV store that runs on a pluggable runtime substrate.
//
// The package re-exports the pieces a user composes:
//
//   - A runtime Env and Task: the execution substrate. Two backends exist —
//     the deterministic discrete-event Kernel (virtual time, bit-identical
//     replays) and the wall-clock Env (real goroutines and time.Sleep, for
//     serving real traffic). All API calls that do I/O take a Task and
//     block on its backend's clock.
//   - Store: the per-SSD LEED data store — circular key/value logs with the
//     DRAM/Flash hybrid index, compaction, and swapping (§3.2-§3.3). A
//     Store runs unchanged on either backend.
//   - Cluster: the full distributed system — token-based intra-JBOF
//     execution, flow-control scheduling, CRRS chain replication, and the
//     membership control plane (§3.4-§3.8). Runs on either backend: a
//     deterministic deployment on the Kernel, real goroutines with modeled
//     link delay as real sleeps on the wall clock.
//   - Workloads: YCSB generators matching the paper's evaluation.
//
// See examples/ for runnable entry points, cmd/leed-bench for the harness
// that regenerates every table and figure in the paper, and cmd/leedctl
// serve for a wall-clock store over a persistent image.
package leed

import (
	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// Runtime substrate.
type (
	// Env is a runtime environment: clock, timers, task spawning, and sync
	// primitive constructors. A Kernel and a *WallClock both implement it.
	Env = runtime.Env
	// Task is one running task; blocking APIs take one. A sim *Proc and a
	// wallclock task both implement it.
	Task = runtime.Task
	// Kernel is the deterministic discrete-event simulation engine: the
	// runtime Env plus virtual-time controls (Run, At, Go, Idle, Close).
	Kernel = sim.Runner
	// Proc is a simulated process: the sim backend's Task.
	Proc = sim.Proc
	// WallClock is the real-time backend: tasks are goroutines and the
	// clock is the wall clock.
	WallClock = wallclock.Env
	// Time is a point in time in nanoseconds (virtual or wall-clock,
	// depending on the backend).
	Time = runtime.Time
	// Histogram records latency distributions.
	Histogram = runtime.Histogram
)

// Time units.
const (
	Microsecond = runtime.Microsecond
	Millisecond = runtime.Millisecond
	Second      = runtime.Second
)

// Data store layer (§3.2–§3.3).
type (
	// Store is one LEED per-SSD data store.
	Store = core.Store
	// StoreConfig configures a Store.
	StoreConfig = core.Config
	// Device is the flash device interface stores run on.
	Device = flashsim.Device
)

// Cluster layer (§3.4–§3.8).
type (
	// Cluster is a full LEED deployment: JBOFs, control plane, clients.
	Cluster = cluster.Cluster
	// ClusterConfig configures a Cluster.
	ClusterConfig = cluster.Config
	// Client is the co-located front-end library with flow control.
	Client = cluster.Client
	// NodeID identifies a JBOF.
	NodeID = cluster.NodeID
)

// Workloads (§4.1).
type (
	// Workload is a YCSB mix definition.
	Workload = ycsb.Workload
	// Generator produces an operation stream.
	Generator = ycsb.Generator
)

// The paper's six YCSB workloads.
var (
	WorkloadA  = ycsb.WorkloadA
	WorkloadB  = ycsb.WorkloadB
	WorkloadC  = ycsb.WorkloadC
	WorkloadD  = ycsb.WorkloadD
	WorkloadF  = ycsb.WorkloadF
	WorkloadWR = ycsb.WorkloadWR
)

// ErrNotFound reports a missing key.
var ErrNotFound = core.ErrNotFound

// NewKernel creates a simulation kernel at virtual time zero.
func NewKernel() Kernel { return sim.New() }

// NewWallClock creates a wall-clock runtime environment whose clock starts
// at zero now. Spawn tasks with env.Spawn and call env.Wait after the last
// one; unlike the sim kernel there is no Run loop to drive.
func NewWallClock() *WallClock { return wallclock.New() }

// NewHistogram creates an empty latency histogram.
func NewHistogram() *Histogram { return sim.NewHistogram() }

// NewCluster assembles a LEED cluster on cfg.Env; call its Start method,
// then (on the Kernel) pump Run while issuing operations from procs, or
// (on a WallClock) spawn a task and block on Cluster.AwaitReady first.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// NewMemStore creates a single store over a zero-latency in-memory device —
// the quickest way to exercise the data-store API functionally. env may be
// a sim Kernel or a *WallClock.
func NewMemStore(env Env, numSegments int, keyLogBytes, valLogBytes int64) *Store {
	dev := flashsim.NewMemDevice(env, keyLogBytes+valLogBytes+(1<<20))
	return core.NewStore(core.Config{
		Env:         env,
		Device:      dev,
		NumSegments: numSegments,
		KeyLogBytes: keyLogBytes,
		ValLogBytes: valLogBytes,
	})
}

// NewSSDStore creates a single store over a latency-modeled NVMe device
// (the Samsung DCT983 profile from the paper's testbed). env may be a sim
// Kernel or a *WallClock; on the latter, modeled service times elapse in
// real time.
func NewSSDStore(env Env, capacity int64, numSegments int, keyLogBytes, valLogBytes int64) *Store {
	dev := flashsim.NewSSD(env, flashsim.SamsungDCT983(capacity))
	return core.NewStore(core.Config{
		Env:         env,
		Device:      dev,
		NumSegments: numSegments,
		KeyLogBytes: keyLogBytes,
		ValLogBytes: valLogBytes,
	})
}

// NewGenerator creates a YCSB operation generator.
func NewGenerator(w Workload, records int64, valLen int, seed int64) *Generator {
	return ycsb.NewGenerator(w, records, valLen, seed)
}

// Trace capture and replay (see internal/ycsb's trace format).
type (
	// OpSource produces an operation stream: a Generator or a TraceReplayer.
	OpSource = ycsb.Source
	// TraceReplayer replays a recorded operation trace.
	TraceReplayer = ycsb.TraceReplayer
)

// RecordTrace captures the next n operations from a source.
var RecordTrace = ycsb.Record

// WriteTrace serializes operations to a writer in the trace format.
var WriteTrace = ycsb.WriteTrace

// ReadTrace parses a trace for replay.
var ReadTrace = ycsb.ReadTrace
