// Package leed is the public facade of this repository: a reproduction of
// "LEED: A Low-Power, Fast Persistent Key-Value Store on SmartNIC JBOFs"
// (SIGCOMM 2023) as a deterministic discrete-event simulation.
//
// The package re-exports the pieces a user composes:
//
//   - A simulation Kernel and Proc (virtual time; all API calls that do I/O
//     take a *Proc and block in virtual time).
//   - Store: the per-SSD LEED data store — circular key/value logs with the
//     DRAM/Flash hybrid index, compaction, and swapping (§3.2-§3.3).
//   - Cluster: the full distributed system — token-based intra-JBOF
//     execution, flow-control scheduling, CRRS chain replication, and the
//     membership control plane (§3.4-§3.8).
//   - Workloads: YCSB generators matching the paper's evaluation.
//
// See examples/ for runnable entry points and cmd/leed-bench for the
// harness that regenerates every table and figure in the paper.
package leed

import (
	"leed/internal/cluster"
	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

// Simulation substrate.
type (
	// Kernel is the discrete-event simulation engine.
	Kernel = sim.Kernel
	// Proc is a simulated process; blocking APIs take one.
	Proc = sim.Proc
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Histogram records latency distributions.
	Histogram = sim.Histogram
)

// Virtual time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Data store layer (§3.2–§3.3).
type (
	// Store is one LEED per-SSD data store.
	Store = core.Store
	// StoreConfig configures a Store.
	StoreConfig = core.Config
	// Device is the flash device interface stores run on.
	Device = flashsim.Device
)

// Cluster layer (§3.4–§3.8).
type (
	// Cluster is a full LEED deployment: JBOFs, control plane, clients.
	Cluster = cluster.Cluster
	// ClusterConfig configures a Cluster.
	ClusterConfig = cluster.Config
	// Client is the co-located front-end library with flow control.
	Client = cluster.Client
	// NodeID identifies a JBOF.
	NodeID = cluster.NodeID
)

// Workloads (§4.1).
type (
	// Workload is a YCSB mix definition.
	Workload = ycsb.Workload
	// Generator produces an operation stream.
	Generator = ycsb.Generator
)

// The paper's six YCSB workloads.
var (
	WorkloadA  = ycsb.WorkloadA
	WorkloadB  = ycsb.WorkloadB
	WorkloadC  = ycsb.WorkloadC
	WorkloadD  = ycsb.WorkloadD
	WorkloadF  = ycsb.WorkloadF
	WorkloadWR = ycsb.WorkloadWR
)

// ErrNotFound reports a missing key.
var ErrNotFound = core.ErrNotFound

// NewKernel creates a simulation kernel at virtual time zero.
func NewKernel() *Kernel { return sim.New() }

// NewHistogram creates an empty latency histogram.
func NewHistogram() *Histogram { return sim.NewHistogram() }

// NewCluster assembles a LEED cluster; call its Start method, then drive
// the kernel (Cluster.K.Run) while issuing operations from procs.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// NewMemStore creates a single store over a zero-latency in-memory device —
// the quickest way to exercise the data-store API functionally.
func NewMemStore(k *Kernel, numSegments int, keyLogBytes, valLogBytes int64) *Store {
	dev := flashsim.NewMemDevice(k, keyLogBytes+valLogBytes+(1<<20))
	return core.NewStore(core.Config{
		Kernel:      k,
		Device:      dev,
		NumSegments: numSegments,
		KeyLogBytes: keyLogBytes,
		ValLogBytes: valLogBytes,
	})
}

// NewSSDStore creates a single store over a latency-modeled NVMe device
// (the Samsung DCT983 profile from the paper's testbed).
func NewSSDStore(k *Kernel, capacity int64, numSegments int, keyLogBytes, valLogBytes int64) *Store {
	dev := flashsim.NewSSD(k, flashsim.SamsungDCT983(capacity))
	return core.NewStore(core.Config{
		Kernel:      k,
		Device:      dev,
		NumSegments: numSegments,
		KeyLogBytes: keyLogBytes,
		ValLogBytes: valLogBytes,
	})
}

// NewGenerator creates a YCSB operation generator.
func NewGenerator(w Workload, records int64, valLen int, seed int64) *Generator {
	return ycsb.NewGenerator(w, records, valLen, seed)
}

// Trace capture and replay (see internal/ycsb's trace format).
type (
	// OpSource produces an operation stream: a Generator or a TraceReplayer.
	OpSource = ycsb.Source
	// TraceReplayer replays a recorded operation trace.
	TraceReplayer = ycsb.TraceReplayer
)

// RecordTrace captures the next n operations from a source.
var RecordTrace = ycsb.Record

// WriteTrace serializes operations to a writer in the trace format.
var WriteTrace = ycsb.WriteTrace

// ReadTrace parses a trace for replay.
var ReadTrace = ycsb.ReadTrace
