package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"syscall"
	"time"

	"leed/internal/chaos"
	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/transport"
)

// chaosCmd dispatches the served-path chaos drills: the proxy scenarios run
// in-process through a transport.FaultProxy (chaos.RunServedDrill), while
// kill re-execs this binary as a real `serve -listen` child, SIGKILLs it
// mid-load, and verifies zero acked-write loss after restart-and-recover.
// Any violation exits non-zero.
func chaosCmd(image string, capacity int64, partitions int, device string, durable bool,
	seed int64, scenario, metricsAddr string) error {
	reg := obs.NewRegistry()
	msrv, err := startMetrics(metricsAddr, reg, nil)
	if err != nil {
		return err
	}
	defer msrv.Close()

	type step struct {
		name string
		run  func() error
	}
	var steps []step
	served := func(sc chaos.ServedScenario) step {
		return step{string(sc), func() error { return servedDrill(sc, seed, reg) }}
	}
	kill := step{"kill", func() error {
		return killDrill(image, capacity, partitions, device, durable, seed)
	}}
	switch scenario {
	case "all":
		for _, sc := range chaos.ServedScenarios() {
			steps = append(steps, served(sc))
		}
		steps = append(steps, kill)
	case string(chaos.ServedProxyDrop), string(chaos.ServedProxyPartition):
		steps = append(steps, served(chaos.ServedScenario(scenario)))
	case "kill":
		steps = append(steps, kill)
	case string(chaos.ProcKillTail), string(chaos.ProcKillHead), string(chaos.ProcPartition):
		// Multi-process cluster drills: spawn real manager/node children, no
		// image needed. Not part of "all" — they stand up a whole cluster and
		// have their own CI step.
		sc := chaos.ProcScenario(scenario)
		steps = append(steps, step{scenario, func() error { return procDrill(sc, seed) }})
	default:
		return fmt.Errorf("unknown chaos -scenario %q (want proxy-drop, proxy-partition, kill, "+
			"proc-kill-tail, proc-kill-head, proc-partition, or all)",
			scenario)
	}
	if scenario == "all" || scenario == "kill" {
		if image == "" {
			return fmt.Errorf("chaos %s needs -image for the kill drill", scenario)
		}
	}

	failed := 0
	for _, st := range steps {
		if err := st.run(); err != nil {
			fmt.Fprintf(os.Stderr, "chaos %s: %v\n", st.name, err)
			failed++
		}
	}
	printSnapshot(reg)
	if failed > 0 {
		return fmt.Errorf("%d of %d chaos drill(s) failed", failed, len(steps))
	}
	return nil
}

// servedDrill runs one proxy scenario and prints its report.
func servedDrill(sc chaos.ServedScenario, seed int64, reg *obs.Registry) error {
	rep, err := chaos.RunServedDrill(chaos.ServedConfig{
		Seed:     seed,
		Scenario: sc,
		Obs:      reg,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	if !rep.Pass {
		return fmt.Errorf("drill failed with %d violation(s)", len(rep.Violations))
	}
	return nil
}

// procDrill runs one multi-process cluster scenario: this binary re-execed
// as `leedctl manager` and `leedctl node` children, a fault injected into a
// live chain, and zero acked-write loss demanded through the manager's
// reconfiguration.
func procDrill(sc chaos.ProcScenario, seed int64) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	rep, err := chaos.RunProcDrill(chaos.ProcConfig{
		Seed:     seed,
		Scenario: sc,
		Spawn: func(spec chaos.ProcSpec) (*exec.Cmd, error) {
			cmd := exec.Command(exe, spec.Args()...)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return cmd, nil
		},
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	for _, v := range rep.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	if !rep.Pass {
		return fmt.Errorf("drill failed with %d violation(s)", len(rep.Violations))
	}
	return nil
}

// killKey tracks one key's write history across the kill drill, with the
// same one-directional contract the chaos drills use: acked implies
// readable; an errored write leaves the key's final version ambiguous.
type killKey struct {
	maxIssued int
	lastAcked int
	poisoned  bool
}

// killDrill is the crash-durability drill on a real process boundary:
//
//  1. reformat the image and start `leedctl serve -listen` as a child;
//  2. drive versioned writes through a ReliableClient over real TCP;
//  3. kill -9 the child mid-load — acked writes live in the page cache
//     (pwrite returned), which survives process death;
//  4. restart the child on the same image, let recovery replay the
//     superblock and key-log scan;
//  5. read every key back and verify no acknowledged write was lost.
func killDrill(image string, capacity int64, partitions int, device string, durable bool, seed int64) error {
	if image == "" {
		return fmt.Errorf("chaos kill needs -image")
	}
	if err := os.Remove(image); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("reformat %s: %w", image, err)
	}
	addr, err := freeAddr()
	if err != nil {
		return err
	}

	child, out, err := startServeChild(image, capacity, partitions, device, durable, addr)
	if err != nil {
		return err
	}
	if err := awaitServer(addr, 15*time.Second); err != nil {
		syscall.Kill(child.Process.Pid, syscall.SIGKILL)
		child.Wait()
		return fmt.Errorf("serve child never came up: %w\nchild output:\n%s", err, out.String())
	}

	const nKeys = 48
	const nWriters = 4
	keys := make([]killKey, nKeys)
	env := wallclock.New()
	rc := newDrillClient(env, addr, seed)

	// The kill lands from a raw goroutine while writers are mid-load; the
	// writers then fail out (dead connection, refused redial) and stop.
	killed := make(chan struct{})
	killTimer := time.AfterFunc(400*time.Millisecond, func() {
		syscall.Kill(child.Process.Pid, syscall.SIGKILL)
		close(killed)
	})
	var acked, failedWrites int
	for w := 0; w < nWriters; w++ {
		w := w
		env.Spawn("kill-writer", func(p runtime.Task) {
			for round := 0; ; round++ {
				for i := w; i < nKeys; i += nWriters {
					ks := &keys[i]
					ver := ks.maxIssued + 1
					ks.maxIssued = ver
					err := rc.Put(p, killKeyName(i), killVal(i, ver))
					if err != nil {
						failedWrites++
						if !server.WriteNotExecuted(err) {
							ks.poisoned = true
						}
						return // server is gone; this writer is done
					}
					ks.lastAcked = ver
					acked++
				}
				p.Sleep(2 * runtime.Millisecond)
			}
		})
	}
	waitBounded(env, 30*time.Second)
	killTimer.Stop()
	select {
	case <-killed:
	default:
		// Writers errored out before the timer (should not happen on a
		// healthy child) — kill now so Wait below reaps a dead process.
		syscall.Kill(child.Process.Pid, syscall.SIGKILL)
	}
	rc.Close()
	child.Wait() // reap; exit status is "signal: killed", not an error here

	fmt.Printf("chaos kill seed=%d: killed serve child pid=%d mid-load: %d writes acked, %d writers errored, %d keys ambiguous\n",
		seed, child.Process.Pid, acked, failedWrites, countPoisoned(keys))

	// Restart on the same image: recovery replays the superblock and scans
	// the key log. The acked writes must all be there.
	child2, out2, err := startServeChild(image, capacity, partitions, device, durable, addr)
	if err != nil {
		return fmt.Errorf("restart serve child: %w", err)
	}
	if err := awaitServer(addr, 15*time.Second); err != nil {
		syscall.Kill(child2.Process.Pid, syscall.SIGKILL)
		child2.Wait()
		return fmt.Errorf("restarted child never came up: %w\nchild output:\n%s", err, out2.String())
	}

	env2 := wallclock.New()
	rc2 := newDrillClient(env2, addr, seed+1)
	var violations []string
	env2.Spawn("kill-verify", func(p runtime.Task) {
		for i := range keys {
			ks := &keys[i]
			val, err := rc2.Get(p, killKeyName(i))
			switch {
			case err != nil && ks.lastAcked > 0:
				violations = append(violations,
					fmt.Sprintf("key %04d: acked v%d but read failed after recovery: %v", i, ks.lastAcked, err))
			case err != nil:
				// Never acked: absence is fine.
			default:
				ver, ok := parseKillVal(val)
				if !ok {
					violations = append(violations, fmt.Sprintf("key %04d: unparseable value %q", i, val))
					continue
				}
				if ver > ks.maxIssued {
					violations = append(violations,
						fmt.Sprintf("key %04d: phantom v%d, max issued v%d", i, ver, ks.maxIssued))
				}
				if ver < ks.lastAcked {
					violations = append(violations,
						fmt.Sprintf("key %04d: lost acked write, read v%d < acked v%d", i, ver, ks.lastAcked))
				}
			}
		}
	})
	waitBounded(env2, 30*time.Second)
	rc2.Close()

	// Graceful shutdown: SIGTERM drains and flushes.
	child2.Process.Signal(syscall.SIGTERM)
	child2.Wait()

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("  violation: %s\n", v)
		}
		return fmt.Errorf("kill drill lost data: %d violation(s)", len(violations))
	}
	fmt.Printf("chaos kill: PASS — all %d acked writes survived kill -9 and recovery\n", acked)
	return nil
}

func killKeyName(i int) []byte { return []byte(fmt.Sprintf("kill-%04d", i)) }

func killVal(i, ver int) []byte { return []byte(fmt.Sprintf("%d|kill-%04d", ver, i)) }

func parseKillVal(val []byte) (int, bool) {
	var ver, i int
	if _, err := fmt.Sscanf(string(val), "%d|kill-%04d", &ver, &i); err != nil {
		return 0, false
	}
	return ver, true
}

func countPoisoned(keys []killKey) int {
	n := 0
	for i := range keys {
		if keys[i].poisoned {
			n++
		}
	}
	return n
}

// newDrillClient builds a ReliableClient dialing addr with drill-friendly
// settings: short deadline, few attempts, so a dead server surfaces as an
// error in about a second instead of a long retry tail.
func newDrillClient(env *wallclock.Env, addr string, seed int64) *server.ReliableClient {
	return server.NewReliableClient(server.ReliableConfig{
		Env: env,
		Dial: func(t runtime.Task) (transport.Conn, error) {
			return transport.DialTCPOpts(env, addr, transport.TCPOptions{
				ReadIdleTimeout: 10 * time.Second,
			})
		},
		Depth:       16,
		Deadline:    500 * runtime.Millisecond,
		MaxAttempts: 2,
		BackoffBase: 10 * runtime.Millisecond,
		Seed:        seed,
	})
}

// startServeChild re-execs this binary as `serve -listen addr` against the
// image. Output is buffered and only surfaced on failure.
func startServeChild(image string, capacity int64, partitions int, device string, durable bool, addr string) (*exec.Cmd, *bytes.Buffer, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	args := []string{
		"-image", image,
		"-capacity", fmt.Sprint(capacity),
		"-partitions", fmt.Sprint(partitions),
		"-device", device,
		"-listen", addr,
	}
	if durable {
		args = append(args, "-durable")
	}
	args = append(args, "serve")
	cmd := exec.Command(exe, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("start serve child: %w", err)
	}
	return cmd, &out, nil
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// child to bind. The tiny race window is acceptable for a drill.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// awaitServer polls until addr accepts a TCP connection; serveListen binds
// its listener only after recovery completes, so connect == ready.
func awaitServer(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("no listener on %s within %v", addr, budget)
}

// waitBounded drains env.Wait with a hard timeout so a wedged task cannot
// hang the drill process.
func waitBounded(env *wallclock.Env, budget time.Duration) {
	done := make(chan struct{})
	go func() { env.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(budget):
	}
}
