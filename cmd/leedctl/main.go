// Command leedctl operates a single LEED data store persisted in an image
// file, demonstrating the on-flash format and crash recovery (§3.2-§3.3)
// across real process invocations.
//
//	leedctl -image /tmp/store.img put user:1 hello
//	leedctl -image /tmp/store.img get user:1
//	leedctl -image /tmp/store.img del user:1
//	leedctl -image /tmp/store.img keys
//	leedctl -image /tmp/store.img stats
//	leedctl -image /tmp/store.img compact
//	leedctl -image /tmp/store.img load 10000        # bulk-load objects
//	leedctl -image /tmp/store.img bench 20000       # YCSB-B benchmark
//	leedctl -image /tmp/store.img serve 20000       # wall-clock concurrent serving
//	leedctl -image /tmp/store.img -listen :7070 serve   # TCP server (drain on SIGINT)
//	leedctl -addr 127.0.0.1:7070 loadgen            # drive a served instance over TCP
//	leedctl -image /tmp/store.img soak 5            # wall-clock fault/crash soak
//	leedctl -image /tmp/store.img chaos             # served-path chaos drills + kill -9 drill
//	leedctl -cluster soak 2                         # wall-clock cluster fault drills
//	leedctl -cluster bench 20000                    # wall-clock cluster YCSB-B bench
//
// Every invocation opens the image, replays recovery (superblock + key-log
// scan), performs the command, and flushes the superblock.
//
// All commands except serve and soak run on the deterministic sim kernel
// (virtual time). serve runs the same store on the wall-clock runtime
// backend: real goroutine clients issue concurrent PUT/GET/DEL against the
// image and the reported latencies are real elapsed time. soak REFORMATS
// the image and drives N crash-recovery cycles with injected device faults
// against it, checking that no acknowledged write is ever lost (§3.2.3);
// it exits non-zero on any durability violation.
//
// With -cluster, soak and bench target a full multi-JBOF deployment on the
// wall-clock backend instead of a single image store (no -image needed; the
// JBOFs run on in-memory simulated SSDs). soak -cluster executes the chaos
// drill scenarios — seeded message loss, partition-and-heal, crash-restart
// with re-sync, device faults, and the mixed schedule — on real goroutines,
// exiting non-zero if any acked write is lost or a chain fails to converge
// (§3.8.1). bench -cluster drives a closed-loop YCSB-B mix from concurrent
// client tasks through CRRS chains and reports real-time throughput and
// client-observed latency.
//
// serve -listen mounts the image behind a real TCP server (internal/server
// over the transport seam): the engine's partitions are ring-routed, requests
// pipeline per connection, and SIGINT/SIGTERM triggers a graceful drain that
// completes in-flight requests and flushes the store. loadgen is the matching
// driver: run it from a separate process against -addr with N connections ×
// a pipeline window of outstanding requests each, a YCSB mix, and a warmup
// before the measured window; it prints the client-observed throughput,
// latency, and stage attribution, and records them as BENCH_server.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"leed/internal/bench"
	"leed/internal/chaos"
	"leed/internal/cluster"
	"leed/internal/cluster/proc"
	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/flashsim"
	"leed/internal/obs"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/server"
	"leed/internal/sim"
	"leed/internal/transport"
	"leed/internal/ycsb"
)

func main() {
	// The cluster roles take the subcommand first (leedctl manager -listen
	// ... / leedctl node -id ...): each role owns its flag set, so the
	// single-store flag soup stays out of multi-process deployments.
	if len(os.Args) > 1 && (os.Args[1] == "manager" || os.Args[1] == "node") {
		os.Exit(proc.Main(os.Args[1:]))
	}
	image := flag.String("image", "", "store image file (required)")
	capacity := flag.Int64("capacity", 64<<20, "image capacity in bytes (fixed at init)")
	modelLatency := flag.Bool("latency", false, "model DCT983 NVMe latencies on top of the image (for bench)")
	clients := flag.Int("clients", 8, "concurrent client goroutines for serve and wallclock bench")
	seed := flag.Int64("seed", 1, "rng seed for soak fault schedules")
	device := flag.String("device", "async", "device path for serve/soak/wallclock bench: sync (FileDevice) or async (submission-queue AsyncFileDevice)")
	durable := flag.Bool("durable", false, "serve/soak: open the image O_DSYNC so every write completes at real device latency")
	wcBench := flag.Bool("wallclock", false, "bench only: run the wall-clock sync-vs-async device comparison instead of the sim benchmark")
	rate := flag.Float64("rate", 0, "wallclock bench open-loop arrivals/sec (0 = closed loop over -clients)")
	benchout := flag.String("benchout", "", "wallclock bench / loadgen: JSON output path (default BENCH_wallclock.json / BENCH_server.json)")
	clusterMode := flag.Bool("cluster", false, "soak/bench: drive a multi-JBOF cluster on the wall-clock backend instead of an image store")
	scenario := flag.String("scenario", "all", "cluster soak: drill scenario (message-loss, partition-heal, crash-restart, device-faults, mixed, all)")
	metricsAddr := flag.String("metrics-addr", "", "serve/soak/bench/loadgen: HTTP address exposing /metrics (Prometheus text), /metrics.json, and /traces while the command runs (e.g. :9100)")
	listen := flag.String("listen", "", "serve: TCP address to serve rpcproto clients on (e.g. :7070); the process runs until SIGINT/SIGTERM, then drains")
	partitions := flag.Int("partitions", 4, "serve -listen: engine partitions carved out of the image")
	addr := flag.String("addr", "", "loadgen: TCP address of a running leedctl serve -listen (required)")
	manager := flag.String("manager", "", "loadgen: heartbeat address of a running leedctl manager — drive the whole multi-process cluster instead of one server")
	managerMetrics := flag.String("manager-metrics", "", "loadgen -manager: the manager's aggregated metrics address (its -metrics-addr); scraped at the measured window's edges to report cluster-wide Joules and requests/Joule")
	pipeline := flag.Int64("pipeline", 16, "loadgen: outstanding-request window per connection")
	workload := flag.String("workload", "b", "loadgen: YCSB mix (a, b, c, d, f, wr)")
	records := flag.Int64("records", 2000, "loadgen: keyspace size (preloaded before the measured window)")
	batch := flag.Int("batch", 0, "loadgen: issue ops as MultiGet/MultiPut frames of this many sub-ops (0/1 = single-op RPCs)")
	duration := flag.Duration("duration", 5*time.Second, "loadgen: measured window")
	warmup := flag.Duration("warmup", 0, "loadgen: warmup before the measured window (default duration/4)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 || (*image == "" && !*clusterMode &&
		flag.Arg(0) != "loadgen" && flag.Arg(0) != "chaos" && flag.Arg(0) != "hotpath") {
		usage()
		os.Exit(2)
	}

	if flag.Arg(0) == "chaos" {
		if err := chaosCmd(*image, *capacity, *partitions, *device, *durable,
			*seed, *scenario, *metricsAddr); err != nil {
			fatal(err)
		}
		return
	}

	if flag.Arg(0) == "loadgen" {
		if *manager != "" {
			if err := clusterLoadgen(*manager, *clients, *workload, *records, *seed,
				*warmup, *duration, *benchout, *metricsAddr, *managerMetrics); err != nil {
				fatal(err)
			}
			return
		}
		if err := loadgen(*addr, *clients, *pipeline, *workload, *records, *seed, *batch,
			*warmup, *duration, *benchout, *metricsAddr); err != nil {
			fatal(err)
		}
		return
	}

	if flag.Arg(0) == "hotpath" {
		if err := hotpath(*benchout); err != nil {
			fatal(err)
		}
		return
	}

	if *clusterMode {
		switch flag.Arg(0) {
		case "soak":
			if err := clusterSoak(*seed, *scenario, *metricsAddr, flag.Args()); err != nil {
				fatal(err)
			}
		case "bench":
			if err := clusterBench(*clients, *seed, *metricsAddr, flag.Args()); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("-cluster supports only soak and bench, not %q", flag.Arg(0)))
		}
		return
	}

	if flag.Arg(0) == "serve" {
		if *listen != "" {
			if err := serveListen(*image, *capacity, *listen, *partitions, *device, *durable, *metricsAddr); err != nil {
				fatal(err)
			}
			return
		}
		if err := serve(*image, *capacity, *clients, *device, *durable, *metricsAddr, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}
	if flag.Arg(0) == "soak" {
		if err := soak(*image, *capacity, *seed, *device, *durable, *metricsAddr, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}
	if flag.Arg(0) == "bench" && *wcBench {
		if err := benchWallclock(*image, *capacity, *clients, *rate, *benchout, *metricsAddr, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	k := sim.New()
	defer k.Close()
	fileDev, err := flashsim.OpenFileDevice(k, *image, *capacity)
	if err != nil {
		fatal(err)
	}
	defer fileDev.Close()
	var dev flashsim.Device = fileDev
	if *modelLatency {
		dev = flashsim.NewLatencyShim(k, fileDev, flashsim.SamsungDCT983(*capacity))
	}
	reg := obs.NewRegistry()
	flashsim.Observe(dev, reg, nil, "image")

	// Geometry is a pure function of capacity, so every invocation
	// reconstructs the same layout.
	geo := core.PlanPartition(*capacity, 32, 1024, core.PlanOpts{})
	store := core.NewStore(core.StoreConfigFor(geo, core.Config{
		Env:    k,
		Device: dev,
	}))

	args := flag.Args()
	var cmdErr error
	k.Go("leedctl", func(p *sim.Proc) {
		if _, err := store.Recover(p); err != nil {
			cmdErr = fmt.Errorf("recover: %w", err)
			return
		}
		switch args[0] {
		case "put":
			if len(args) != 3 {
				cmdErr = fmt.Errorf("put needs KEY VALUE")
				return
			}
			if _, err := store.Put(p, []byte(args[1]), []byte(args[2])); err != nil {
				cmdErr = err
				return
			}
			fmt.Println("OK")
		case "get":
			if len(args) != 2 {
				cmdErr = fmt.Errorf("get needs KEY")
				return
			}
			v, _, err := store.Get(p, []byte(args[1]))
			if err != nil {
				cmdErr = err
				return
			}
			fmt.Println(string(v))
		case "del":
			if len(args) != 2 {
				cmdErr = fmt.Errorf("del needs KEY")
				return
			}
			if _, err := store.Del(p, []byte(args[1])); err != nil {
				cmdErr = err
				return
			}
			fmt.Println("OK")
		case "keys":
			cmdErr = store.Range(p, func(key, val []byte) bool {
				fmt.Printf("%s (%d bytes)\n", key, len(val))
				return true
			})
		case "stats":
			s := store.Stats()
			fmt.Printf("objects:        %d\n", store.Objects())
			fmt.Printf("index DRAM:     %d bytes\n", store.DRAMBytes())
			fmt.Printf("key log used:   %d / %d bytes (garbage %d)\n",
				store.KeyLog().Used(), store.KeyLog().Size(), store.KeyGarbage())
			fmt.Printf("value log used: %d / %d bytes (garbage %d)\n",
				store.ValLog().Used(), store.ValLog().Size(), store.ValGarbage())
			fmt.Printf("lifetime:       gets=%d puts=%d dels=%d compactions=%d\n",
				s.Gets, s.Puts, s.Dels, s.KeyCompactions+s.ValCompactions)
		case "compact":
			v, err := store.CompactValueLog(p)
			if err != nil {
				cmdErr = err
				return
			}
			kb, err := store.CompactKeyLog(p)
			if err != nil {
				cmdErr = err
				return
			}
			fmt.Printf("reclaimed %d value-log bytes, %d key-log bytes\n", v, kb)
		case "load":
			n := int64(10000)
			if len(args) > 1 {
				fmt.Sscanf(args[1], "%d", &n)
			}
			val := make([]byte, 256)
			for i := int64(0); i < n; i++ {
				if _, err := store.Put(p, ycsb.KeyAt(i), val); err != nil {
					cmdErr = fmt.Errorf("load at %d: %w", i, err)
					return
				}
			}
			fmt.Printf("loaded %d objects (%d total live)\n", n, store.Objects())
		case "bench":
			n := int64(20000)
			if len(args) > 1 {
				fmt.Sscanf(args[1], "%d", &n)
			}
			records := store.Objects()
			if records == 0 {
				cmdErr = fmt.Errorf("bench needs a loaded image (run load first)")
				return
			}
			gen := ycsb.NewGenerator(ycsb.WorkloadB, records, 256, 42)
			lat := sim.NewHistogram()
			start := p.Now()
			for i := int64(0); i < n; i++ {
				op := gen.Next()
				t0 := p.Now()
				var err error
				switch op.Type {
				case ycsb.OpRead:
					_, _, err = store.Get(p, op.Key)
				default:
					_, err = store.Put(p, op.Key, op.Value)
				}
				if err != nil && err != core.ErrNotFound {
					cmdErr = err
					return
				}
				lat.Record(p.Now() - t0)
				if store.NeedsValueCompaction() {
					store.CompactValueLog(p)
				}
				if store.NeedsKeyCompaction() {
					store.CompactKeyLog(p)
				}
			}
			elapsed := p.Now() - start
			fmt.Printf("YCSB-B: %d ops, simulated %v, latency %v\n", n, elapsed, lat)
			printSnapshot(reg)
		default:
			cmdErr = fmt.Errorf("unknown command %q", args[0])
			return
		}
		if err := store.Flush(p); err != nil {
			cmdErr = fmt.Errorf("flush: %w", err)
		}
	})
	k.Run()
	if cmdErr != nil {
		fatal(cmdErr)
	}
}

// usage enumerates every subcommand with the flags that apply to it, then
// the full flag reference.
func usage() {
	fmt.Fprint(os.Stderr, `usage:
  single-store commands (sim kernel, require -image):
    leedctl -image FILE [-capacity N] [-latency] {put K V | get K | del K | keys | stats | compact}
    leedctl -image FILE load [N]                       bulk-load N objects (default 10000)
    leedctl -image FILE bench [N]                      YCSB-B sim benchmark (load first)

  wall-clock commands (require -image; flags go before the subcommand):
    leedctl -image FILE -wallclock [-clients N] [-rate R] [-benchout PATH] bench [N]
                                                       sync-vs-async device comparison
    leedctl -image FILE [-clients N] [-device sync|async] [-durable] serve [N]
                                                       in-process concurrent serving
    leedctl -image FILE -listen ADDR [-partitions N] [-device sync|async] [-durable] serve
                                                       TCP server; SIGINT/SIGTERM drains
    leedctl -image FILE [-seed N] [-device sync|async] [-durable] soak [CYCLES]
                                                       crash-recovery durability soak

  client commands (no -image; flags go before the subcommand):
    leedctl -addr ADDR [-clients N] [-pipeline N] [-workload a|b|c|d|f|wr]
            [-records N] [-duration D] [-warmup D] [-batch N] [-benchout PATH] loadgen
                                                       drive a served instance over TCP
                                                       (-batch N > 1 uses MultiGet/MultiPut)

  hot-path allocation gate (no -image):
    leedctl [-benchout PATH] hotpath                   benchmark the serve path with
                                                       -benchmem semantics, write
                                                       BENCH_hotpath.json, exit non-zero
                                                       if GET allocs/op exceeds the budget

  cluster commands (no -image):
    leedctl -cluster soak [-seed N] [-scenario S] [ROUNDS]
    leedctl -cluster bench [-clients N] [-seed N] [OPS]

  multi-process cluster (subcommand first; each role owns its flags):
    leedctl manager [-listen ADDR] [-r N] [-numpart N] [-hb-timeout D]
            [-metrics-addr ADDR] [-metrics-poll D]     control plane: membership, failure
                                                       detection, CRRS chain views; its
                                                       /metrics is the fleet-aggregated view
                                                       (members scraped via heartbeat-
                                                       advertised addresses), /attribution
                                                       the cross-process latency table
    leedctl node -id N -manager ADDR [-listen ADDR] [-advertise ADDR]
            [-numpart N] [-ssds N] [-capacity N] [-hb-interval D] [-metrics-addr ADDR]
                                                       one JBOF: engine + RPC + heartbeats;
                                                       joins the cluster on its first beat
    leedctl -manager ADDR [-clients N] [-workload a|b|c|d|f|wr] [-records N]
            [-duration D] [-benchout PATH]
            [-manager-metrics ADDR] loadgen            drive the whole cluster through the
                                                       view-routing client; exit non-zero
                                                       if any acked write is lost; with
                                                       -manager-metrics, report cluster-wide
                                                       Joules and requests/Joule

  served-path chaos drills (flags go before the subcommand):
    leedctl -scenario proxy-drop|proxy-partition [-seed N] chaos
                                                       fault-proxy drills over real TCP
    leedctl -image FILE -scenario kill [-seed N] chaos  kill -9 a serve child mid-load,
                                                       restart, verify zero acked-write loss
    leedctl -image FILE [-seed N] chaos                 all of the above (-scenario all)
    leedctl -scenario proc-kill-tail|proc-kill-head|proc-partition [-seed N] chaos
                                                       multi-process cluster drills: SIGKILL
                                                       or partition a live chain member,
                                                       verify zero acked-write loss through
                                                       the manager's reconfiguration

  -metrics-addr ADDR serves /metrics, /metrics.json, and /traces during any
  wall-clock command.

flags:
`)
	flag.PrintDefaults()
}

// workloadByName resolves a -workload letter to its YCSB mix.
func workloadByName(name string) (ycsb.Workload, error) {
	for _, w := range ycsb.Workloads {
		if strings.EqualFold(w.Name, "YCSB-"+name) {
			return w, nil
		}
	}
	return ycsb.Workload{}, fmt.Errorf("unknown -workload %q (want a, b, c, d, f, or wr)", name)
}

// openWallclockDevice opens the image through the requested device path:
// "sync" is the synchronous FileDevice (one in-context syscall per op),
// "async" the submission-queue AsyncFileDevice. durable opens the image
// O_DSYNC so writes complete at device latency instead of page-cache
// latency; readTime/writeTime put a modeled per-syscall service floor under
// both paths (see flashsim.FileOptions) — the sync device pays it holding
// the runtime lock, the async device pays it on offload workers.
func openWallclockDevice(env *wallclock.Env, kind, image string, capacity int64, durable bool, readTime, writeTime runtime.Time) (flashsim.Device, func() error, error) {
	switch kind {
	case "sync":
		d, err := flashsim.OpenFileDeviceOpts(env, image, capacity, flashsim.FileOptions{
			Durable: durable, ReadTime: readTime, WriteTime: writeTime,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := d.SetSyncReads(true); err != nil {
			return nil, nil, err
		}
		return d, d.Close, nil
	case "async":
		d, err := flashsim.OpenAsyncFileDevice(env, image, capacity, flashsim.AsyncOptions{
			Workers: 8, Durable: durable, ReadTime: readTime, WriteTime: writeTime,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := d.SetSyncReads(true); err != nil {
			return nil, nil, err
		}
		return d, d.Close, nil
	default:
		return nil, nil, fmt.Errorf("unknown -device %q (want sync or async)", kind)
	}
}

// printSnapshot renders the registry's final state: the unified metrics
// listing every subcommand ends with, instead of each hand-formatting its
// own subset of device stats.
func printSnapshot(reg *obs.Registry) {
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Hists) == 0 {
		return
	}
	fmt.Println("-- final metrics snapshot --")
	fmt.Print(snap)
}

// startMetrics serves /metrics, /metrics.json, and /traces on addr for the
// duration of the command. A blank addr is a no-op; Close on the returned
// server is nil-safe.
func startMetrics(addr string, reg *obs.Registry, tr *obs.Tracer) (*obs.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv, err := obs.ServeMetrics(addr, reg, tr)
	if err != nil {
		return nil, fmt.Errorf("metrics endpoint: %w", err)
	}
	fmt.Printf("metrics on http://%s/metrics\n", srv.Addr)
	return srv, nil
}

// serve runs the store on the wall-clock backend: N client goroutines issue
// a mixed PUT/GET/DEL stream against the image concurrently, then the store
// is flushed so a later invocation (any command) recovers the result.
func serve(image string, capacity int64, clients int, device string, durable bool, metricsAddr string, args []string) error {
	totalOps := int64(20000)
	if len(args) > 1 {
		fmt.Sscanf(args[1], "%d", &totalOps)
	}
	if clients < 1 {
		return fmt.Errorf("serve needs -clients >= 1")
	}

	env := wallclock.New()
	dev, closeDev, err := openWallclockDevice(env, device, image, capacity, durable, 0, 0)
	if err != nil {
		return err
	}
	defer closeDev()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, 16, 256)
	flashsim.Observe(dev, reg, tr, device)
	srv, err := startMetrics(metricsAddr, reg, tr)
	if err != nil {
		return err
	}
	defer srv.Close()

	geo := core.PlanPartition(capacity, 32, 1024, core.PlanOpts{})
	store := core.NewStore(core.StoreConfigFor(geo, core.Config{
		Env:    env,
		Device: dev,
	}))

	var recoverErr error
	env.Spawn("recover", func(p runtime.Task) {
		_, recoverErr = store.Recover(p)
	})
	env.Wait()
	if recoverErr != nil {
		return fmt.Errorf("recover: %w", recoverErr)
	}

	// Latency histogram and error slot are shared without locks: the Env
	// execution contract (one running task at a time) protects them.
	lat := sim.NewHistogram()
	opLat := reg.Hist("leed_serve_latency_ns")
	ops := reg.Counter("leed_serve_ops_total")
	var opErr error
	perClient := totalOps / int64(clients)
	start := env.Now()
	for c := 0; c < clients; c++ {
		c := c
		env.Spawn("client", func(p runtime.Task) {
			// Disjoint keyspace per client keeps the run verifiable while
			// the interleaving stays scheduler-dependent.
			gen := ycsb.NewGenerator(ycsb.WorkloadA, perClient/2+1, 256, int64(c))
			for i := int64(0); i < perClient && opErr == nil; i++ {
				op := gen.Next()
				key := append([]byte(fmt.Sprintf("s%d-", c)), op.Key...)
				t0 := p.Now()
				var err error
				switch {
				case op.Type == ycsb.OpRead:
					_, _, err = store.Get(p, key)
				case i%31 == 30:
					_, err = store.Del(p, key)
				default:
					_, err = store.Put(p, key, op.Value)
				}
				if err != nil && err != core.ErrNotFound {
					opErr = fmt.Errorf("client %d: %w", c, err)
					return
				}
				lat.Record(p.Now() - t0)
				opLat.Record(p.Now() - t0)
				ops.Inc()
				if store.NeedsValueCompaction() {
					store.CompactValueLog(p)
				}
				if store.NeedsKeyCompaction() {
					store.CompactKeyLog(p)
				}
			}
		})
	}
	env.Wait()
	if opErr != nil {
		return opErr
	}

	var flushErr error
	env.Spawn("flush", func(p runtime.Task) {
		flushErr = store.Flush(p)
	})
	env.Wait()
	if flushErr != nil {
		return fmt.Errorf("flush: %w", flushErr)
	}

	elapsed := env.Now() - start
	done := perClient * int64(clients)
	fmt.Printf("served %d ops from %d concurrent clients in %v (wall clock)\n", done, clients, elapsed)
	fmt.Printf("throughput: %.0f ops/s\n", float64(done)/elapsed.Seconds())
	fmt.Printf("latency:    %v\n", lat)
	fmt.Printf("live objects: %d\n", store.Objects())
	printSnapshot(reg)
	return nil
}

// serveListen mounts the image behind a TCP server: the engine carves the
// image into -partitions ring-routed partitions, recovers each from flash,
// and internal/server serves rpcproto clients on listen until SIGINT or
// SIGTERM starts a graceful drain. In-flight requests complete, connections
// close, and every partition's superblock is flushed so the next invocation
// recovers the served state.
func serveListen(image string, capacity int64, listen string, partitions int, device string, durable bool, metricsAddr string) error {
	if partitions < 1 {
		return fmt.Errorf("serve -listen needs -partitions >= 1")
	}
	env := wallclock.New()
	dev, closeDev, err := openWallclockDevice(env, device, image, capacity, durable, 0, 0)
	if err != nil {
		return err
	}
	defer closeDev()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, 16, 256)
	flashsim.Observe(dev, reg, tr, device)
	msrv, err := startMetrics(metricsAddr, reg, tr)
	if err != nil {
		return err
	}
	defer msrv.Close()

	partBytes := capacity / int64(partitions)
	eng := engine.New(engine.Config{
		Env:              env,
		Devices:          []flashsim.Device{dev},
		PartitionsPerSSD: partitions,
		Geometry:         core.PlanPartition(partBytes, 32, 1024, core.PlanOpts{}),
		PartitionBytes:   partBytes,
		FlushEvery:       100 * runtime.Millisecond,
		Obs:              reg,
		Tracer:           tr,
		ObsNode:          "serve",
	})
	var recErr error
	recovered := 0
	env.Spawn("recover", func(p runtime.Task) {
		for pid := 0; pid < eng.NumPartitions(); pid++ {
			n, err := eng.RecoverPartition(p, pid)
			if err != nil {
				recErr = fmt.Errorf("recover partition %d: %w", pid, err)
				return
			}
			recovered += n
		}
	})
	env.Wait()
	if recErr != nil {
		return recErr
	}
	eng.Start()

	srv := server.New(server.Config{Env: env, Engine: eng, Obs: reg, Tracer: tr})
	l, err := transport.ListenTCP(env, listen)
	if err != nil {
		return err
	}
	srv.Serve(l)
	fmt.Printf("serving %s on %s: %d partitions, %d segments recovered (SIGINT drains)\n",
		image, l.Addr(), eng.NumPartitions(), recovered)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	srv.Close()
	eng.Stop()
	env.Wait()

	var flushErr error
	env.Spawn("flush", func(p runtime.Task) {
		for pid := 0; pid < eng.NumPartitions(); pid++ {
			if err := eng.Partition(pid).Store.Flush(p); err != nil && flushErr == nil {
				flushErr = fmt.Errorf("flush partition %d: %w", pid, err)
			}
		}
	})
	env.Wait()
	if flushErr != nil {
		return flushErr
	}
	printSnapshot(reg)
	return nil
}

// loadgen drives a running serve -listen instance from this process: conns
// TCP connections with a pipeline window of outstanding requests each, a
// preloaded keyspace, a YCSB mix, and a warmup before the measured window.
// The client-observed measurement (throughput, latency percentiles, stage
// attribution) is printed and recorded as JSON.
func loadgen(addr string, conns int, pipeline int64, workload string, records, seed int64, batch int,
	warmup, duration time.Duration, outPath, metricsAddr string) error {
	if addr == "" {
		return fmt.Errorf("loadgen needs -addr (the server's host:port)")
	}
	w, err := workloadByName(workload)
	if err != nil {
		return err
	}
	if outPath == "" {
		outPath = "BENCH_server.json"
	}
	if warmup <= 0 {
		warmup = duration / 4
	}
	env := wallclock.New()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, 16, 256)
	msrv, err := startMetrics(metricsAddr, reg, tr)
	if err != nil {
		return err
	}
	defer msrv.Close()

	cfg := bench.LoadgenConfig{
		Addr:        addr,
		Connections: conns,
		Pipeline:    pipeline,
		Workload:    w,
		Records:     records,
		ValLen:      256,
		Seed:        seed,
		Batch:       batch,
		Preload:     true,
		Warmup:      runtime.Time(warmup),
		Duration:    runtime.Time(duration),
		Tracer:      tr,
	}
	res, err := bench.RunLoadgen(env, cfg)
	if err != nil {
		return err
	}
	doc := bench.NewServerDoc(cfg, res)
	fmt.Print(doc.String())
	printSnapshot(reg)
	if err := os.WriteFile(outPath, []byte(doc.JSON()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Printf("recorded %s\n", outPath)
	if res.Errs > 0 {
		return fmt.Errorf("loadgen saw %d errored operations", res.Errs)
	}
	return nil
}

// clusterLoadgen drives a running multi-process cluster through the
// view-routing client: views pulled from the manager, writes to chain heads,
// reads to read replicas. Beyond the throughput measurement it gates on the
// loss ledger — every preloaded (acked) key must still read back, which is
// the invariant the CI smoke job checks after SIGKILLing a node mid-run.
func clusterLoadgen(manager string, clients int, workload string, records, seed int64,
	warmup, duration time.Duration, outPath, metricsAddr, managerMetrics string) error {
	w, err := workloadByName(workload)
	if err != nil {
		return err
	}
	if outPath == "" {
		outPath = "BENCH_cluster.json"
	}
	reg := obs.NewRegistry()
	// Sample aggressively (every 8th op, whole-trace, deep ring) — the doc
	// embeds a handful of reassembled cross-process traces for harnesses to
	// assert on, and the ring must be deep enough that a read-heavy mix still
	// retains several multi-hop PUT traces.
	tr := obs.NewTracer(reg, 8, 256)
	msrv, err := startMetrics(metricsAddr, reg, tr)
	if err != nil {
		return err
	}
	defer msrv.Close()

	env := wallclock.New()
	doc, err := bench.RunClusterLoadgen(env, bench.ClusterLoadgenConfig{
		Manager:        manager,
		Clients:        clients,
		Workload:       w,
		Records:        records,
		ValLen:         100,
		Seed:           seed,
		Warmup:         runtime.Time(warmup),
		Duration:       runtime.Time(duration),
		Tracer:         tr,
		ManagerMetrics: managerMetrics,
	})
	if err != nil {
		return err
	}
	fmt.Print(doc.String())
	if err := os.WriteFile(outPath, []byte(doc.JSON()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Printf("recorded %s\n", outPath)
	if doc.LostWrites > 0 {
		return fmt.Errorf("cluster loadgen lost %d acked writes", doc.LostWrites)
	}
	return nil
}

// hotpath runs the serve-path allocation benchmarks (the same ones `go test
// -bench=Serve -benchmem ./internal/server/` runs), records the numbers as
// JSON, and exits non-zero if the GET path exceeds its pinned allocs/op
// budget — the CI gate for hot-path memory discipline (DESIGN.md §13).
func hotpath(outPath string) error {
	if outPath == "" {
		outPath = "BENCH_hotpath.json"
	}
	doc := bench.MeasureHotpath()
	fmt.Print(doc.String())
	if err := os.WriteFile(outPath, []byte(doc.JSON()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Printf("recorded %s\n", outPath)
	return doc.Gate()
}

// soak reformats the image and runs the chaos durability soak on the
// wall-clock backend: N crash-recovery cycles of seeded writes with a
// device-fault window in each, verifying after every recovery that all
// acknowledged writes survive. A stale image cannot be reused — its old
// high-sequence buckets would confuse the recovery scan — so the file is
// recreated from scratch.
func soak(image string, capacity int64, seed int64, device string, durable bool, metricsAddr string, args []string) error {
	cycles := 0 // 0 = chaos default
	if len(args) > 1 {
		fmt.Sscanf(args[1], "%d", &cycles)
	}
	if err := os.Remove(image); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("reformat %s: %w", image, err)
	}

	env := wallclock.New()
	dev, closeDev, err := openWallclockDevice(env, device, image, capacity, durable, 0, 0)
	if err != nil {
		return err
	}
	defer closeDev()
	reg := obs.NewRegistry()
	srv, err := startMetrics(metricsAddr, reg, nil)
	if err != nil {
		return err
	}
	defer srv.Close()

	var rep *chaos.SoakReport
	env.Spawn("soak", func(p runtime.Task) {
		rep = chaos.RunSoak(p, chaos.SoakConfig{
			Env:    env,
			Seed:   seed,
			Cycles: cycles,
			Device: dev,
			Obs:    reg,
		})
	})
	env.Wait()
	fmt.Print(rep)
	printSnapshot(reg)
	if !rep.Pass {
		return fmt.Errorf("soak failed with %d violation(s)", len(rep.Violations))
	}
	return nil
}

// benchWallclock measures the same mixed YCSB-A workload against both
// device paths on the wall-clock backend — each on a fresh image next to
// -image (image+".sync", image+".async") — and records the comparison as
// JSON. With -rate 0 it is a closed loop over -clients tasks; with -rate N
// it is an open loop of N arrivals/sec over a fixed 2s measured window.
//
// Both devices carry the same modeled per-syscall service floor,
// approximating the paper's DCT983 drives at 4KB ops: a persistent store's
// I/O costs device latency, and where each path pays it is what the
// comparison is about — the sync path pays it inside the runtime lock,
// stalling every task, while the async path pays it on offload workers,
// overlapped and amortized over coalesced batches. A modeled floor rather
// than O_DSYNC keeps the measurement about the architecture: real-disk
// durable-write latency on a shared machine varies by an order of magnitude
// run to run, drowning the comparison in page-cache weather.
func benchWallclock(image string, capacity int64, clients int, rate float64, outPath, metricsAddr string, args []string) error {
	if outPath == "" {
		outPath = "BENCH_wallclock.json"
	}
	ops := int64(20000)
	if len(args) > 1 {
		fmt.Sscanf(args[1], "%d", &ops)
	}
	const (
		// A small live set and 1KB values keep value-log churn well inside
		// what compaction sustains at SD-class service times, so neither
		// mode's run degenerates into ErrLogFull storms.
		records = int64(1500)
		valLen  = 1024
		// SD-class service times (see flashsim.SanDiskSD — FAWN's wimpy-node
		// medium): slow enough that both stay above the ~1ms timer-tick
		// floor time.Sleep has on coarse-timer kernels, so the modeled
		// latency is what actually elapses on any platform. Writes cost more
		// than the SanDisk profile's buffered 350us because a charge here
		// covers a whole coalesced run landing durably.
		readTime  = 1200 * runtime.Microsecond
		writeTime = 1500 * runtime.Microsecond
	)
	rc := bench.RunConfig{
		Clients:   clients,
		Ops:       ops,
		WarmupOps: ops / 10,
		Rate:      rate,
		Duration:  2 * runtime.Second,
		Seed:      42,
	}

	runMode := func(kind string) (bench.RunResult, *obs.Registry, error) {
		img := image + "." + kind
		if err := os.Remove(img); err != nil && !os.IsNotExist(err) {
			return bench.RunResult{}, nil, err
		}
		env := wallclock.New()
		dev, closeDev, err := openWallclockDevice(env, kind, img, capacity, false, readTime, writeTime)
		if err != nil {
			return bench.RunResult{}, nil, err
		}
		defer closeDev()
		// Each mode gets its own registry and tracer so the recorded
		// attribution is one device path's, not a blend of both. The metrics
		// endpoint (when requested) serves each mode for its duration.
		reg := obs.NewRegistry()
		tr := obs.NewTracer(reg, 16, 256)
		flashsim.Observe(dev, reg, tr, kind)
		srv, err := startMetrics(metricsAddr, reg, tr)
		if err != nil {
			return bench.RunResult{}, nil, err
		}
		defer srv.Close()
		geo := core.PlanPartition(capacity, 32, valLen, core.PlanOpts{})
		store := core.NewStore(core.StoreConfigFor(geo, core.Config{
			Env:    env,
			Device: dev,
		}))
		do := func(p runtime.Task, op ycsb.Op) error {
			var err error
			switch op.Type {
			case ycsb.OpRead:
				_, _, err = store.Get(p, op.Key)
				if err == core.ErrNotFound {
					err = nil
				}
			default:
				_, err = store.Put(p, op.Key, op.Value)
			}
			if store.NeedsValueCompaction() {
				store.CompactValueLog(p)
			}
			if store.NeedsKeyCompaction() {
				store.CompactKeyLog(p)
			}
			return err
		}
		bench.PreloadWallclock(env, do, records, valLen, 16)
		mrc := rc
		mrc.Tracer = tr
		res := bench.RunWallclock(env, do, ycsb.WorkloadA, records, valLen, mrc)
		return res, reg, nil
	}

	syncRes, syncReg, err := runMode("sync")
	if err != nil {
		return err
	}
	asyncRes, asyncReg, err := runMode("async")
	if err != nil {
		return err
	}

	doc := bench.WallclockDoc{
		Workload:    "YCSB-A",
		Clients:     clients,
		Rate:        rate,
		Records:     records,
		ValLen:      valLen,
		Sync:        bench.NewWallclockRes("sync", syncRes),
		Async:       bench.NewWallclockRes("async", asyncRes),
		Attribution: asyncRes.Attr,
	}
	if syncRes.Thr > 0 {
		doc.Speedup = asyncRes.Thr / syncRes.Thr
	}
	fmt.Print(doc.String())
	if asyncRes.Attr != nil {
		fmt.Print(asyncRes.Attr.String())
	}
	printSnapshot(syncReg)
	printSnapshot(asyncReg)
	if err := os.WriteFile(outPath, []byte(doc.JSON()), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Printf("recorded %s\n", outPath)
	return nil
}

// clusterSoak runs the chaos drill scenarios against a multi-JBOF cluster
// on the wall-clock backend: the same seeded fault schedules the sim drills
// replay deterministically, executed on real goroutines with real sleeps.
// ROUNDS scales each scenario's fault/recovery cycles (0 = drill default).
func clusterSoak(seed int64, scenario, metricsAddr string, args []string) error {
	rounds := 0
	if len(args) > 1 {
		fmt.Sscanf(args[1], "%d", &rounds)
	}
	scs := chaos.Scenarios()
	if scenario != "all" {
		found := false
		for _, sc := range scs {
			if string(sc) == scenario {
				scs = []chaos.Scenario{sc}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown -scenario %q (want one of %v or all)", scenario, chaos.Scenarios())
		}
	}
	// One registry across all scenarios: the endpoint (and the final
	// snapshot) accumulates the whole soak.
	reg := obs.NewRegistry()
	srv, err := startMetrics(metricsAddr, reg, nil)
	if err != nil {
		return err
	}
	defer srv.Close()
	failed := 0
	for _, sc := range scs {
		rep, err := chaos.RunDrill(chaos.Config{
			Seed:     seed,
			Scenario: sc,
			Backend:  chaos.BackendWallclock,
			Rounds:   rounds,
			Obs:      reg,
		})
		if err != nil {
			return fmt.Errorf("drill %s: %w", sc, err)
		}
		fmt.Print(rep)
		if !rep.Pass {
			failed++
		}
	}
	printSnapshot(reg)
	if failed > 0 {
		return fmt.Errorf("%d of %d cluster drill(s) failed", failed, len(scs))
	}
	return nil
}

// clusterBench drives a closed-loop YCSB-B mix against a 3-JBOF CRRS
// deployment on the wall-clock backend: -clients concurrent client tasks,
// each with its own flow-controlled front-end, share OPS operations over a
// preloaded keyspace. Throughput is real elapsed time; latencies are
// client-observed (admission + chain + storage).
func clusterBench(clients int, seed int64, metricsAddr string, args []string) error {
	ops := int64(20000)
	if len(args) > 1 {
		fmt.Sscanf(args[1], "%d", &ops)
	}
	if clients < 1 {
		return fmt.Errorf("bench -cluster needs -clients >= 1")
	}
	const (
		records = int64(1024)
		valLen  = 256
	)

	env := wallclock.New()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg, 16, 256)
	srv, err := startMetrics(metricsAddr, reg, tr)
	if err != nil {
		return err
	}
	defer srv.Close()
	c := cluster.New(cluster.Config{
		Env:           env,
		Obs:           reg,
		Tracer:        tr,
		NumJBOFs:      3,
		SSDsPerJBOF:   2,
		SSDCapacity:   64 << 20,
		NumPartitions: 8,
		R:             3,
		KeyLen:        16,
		ValLen:        valLen,
		NumClients:    clients,
		CRRS:          true,
		FlowControl:   true,
		Swap:          true,
		// Real scheduler jitter would trip the sim-scale 20ms default and
		// evict healthy nodes mid-run; detection latency is not under test.
		HeartbeatTimeout: 250 * runtime.Millisecond,
	})
	c.Start()

	lat := sim.NewHistogram()
	var benchErr error
	var elapsed runtime.Time
	perClient := ops / int64(clients)
	done := make(chan struct{})
	env.Spawn("cluster-bench", func(p runtime.Task) {
		defer func() {
			c.Shutdown()
			close(done)
		}()
		if err := c.AwaitReady(p, 10*runtime.Second); err != nil {
			benchErr = fmt.Errorf("cluster never became ready: %v", err)
			return
		}
		val := make([]byte, valLen)
		for i := range val {
			val[i] = byte(i * 7)
		}
		for i := int64(0); i < records; i++ {
			if _, err := c.Clients[0].Put(p, ycsb.KeyAt(i), val); err != nil {
				benchErr = fmt.Errorf("preload at %d: %w", i, err)
				return
			}
		}
		start := p.Now()
		evs := make([]runtime.Event, 0, clients)
		for ci := 0; ci < clients; ci++ {
			ci := ci
			ev := env.MakeEvent()
			evs = append(evs, ev)
			env.Spawn("bench-client", func(q runtime.Task) {
				defer ev.Fire(nil)
				cl := c.Clients[ci]
				gen := ycsb.NewGenerator(ycsb.WorkloadB, records, valLen, seed+int64(ci))
				for i := int64(0); i < perClient && benchErr == nil; i++ {
					op := gen.Next()
					var (
						l   runtime.Time
						err error
					)
					if op.Type == ycsb.OpRead {
						_, l, err = cl.Get(q, op.Key)
						if err == core.ErrNotFound {
							err = nil
						}
					} else {
						l, err = cl.Put(q, op.Key, op.Value)
					}
					if err != nil {
						benchErr = fmt.Errorf("client %d: %w", ci, err)
						return
					}
					lat.Record(l)
				}
			})
		}
		runtime.WaitAll(p, evs...)
		elapsed = p.Now() - start
	})
	select {
	case <-done:
	case <-time.After(10 * time.Minute):
		return fmt.Errorf("cluster bench did not finish within 10m")
	}
	drained := make(chan struct{})
	go func() { env.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
	}
	if benchErr != nil {
		return benchErr
	}

	total := perClient * int64(clients)
	fmt.Printf("cluster YCSB-B: %d ops from %d clients over a 3-JBOF R=3 CRRS chain in %v (wall clock)\n",
		total, clients, elapsed)
	fmt.Printf("throughput: %.0f ops/s\n", float64(total)/elapsed.Seconds())
	fmt.Printf("latency:    %v\n", lat)
	fmt.Printf("control plane: %s\n", c.Manager)
	attr := tr.Attribution()
	if len(attr.Stages) > 0 {
		fmt.Print(attr.String())
	}
	printSnapshot(reg)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leedctl:", err)
	os.Exit(1)
}
