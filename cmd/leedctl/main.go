// Command leedctl operates a single LEED data store persisted in an image
// file, demonstrating the on-flash format and crash recovery (§3.2-§3.3)
// across real process invocations.
//
//	leedctl -image /tmp/store.img put user:1 hello
//	leedctl -image /tmp/store.img get user:1
//	leedctl -image /tmp/store.img del user:1
//	leedctl -image /tmp/store.img keys
//	leedctl -image /tmp/store.img stats
//	leedctl -image /tmp/store.img compact
//	leedctl -image /tmp/store.img load 10000        # bulk-load objects
//	leedctl -image /tmp/store.img bench 20000       # YCSB-B benchmark
//	leedctl -image /tmp/store.img serve 20000       # wall-clock concurrent serving
//	leedctl -image /tmp/store.img soak 5            # wall-clock fault/crash soak
//
// Every invocation opens the image, replays recovery (superblock + key-log
// scan), performs the command, and flushes the superblock.
//
// All commands except serve and soak run on the deterministic sim kernel
// (virtual time). serve runs the same store on the wall-clock runtime
// backend: real goroutine clients issue concurrent PUT/GET/DEL against the
// image and the reported latencies are real elapsed time. soak REFORMATS
// the image and drives N crash-recovery cycles with injected device faults
// against it, checking that no acknowledged write is ever lost (§3.2.3);
// it exits non-zero on any durability violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"leed/internal/chaos"
	"leed/internal/core"
	"leed/internal/flashsim"
	"leed/internal/runtime"
	"leed/internal/runtime/wallclock"
	"leed/internal/sim"
	"leed/internal/ycsb"
)

func main() {
	image := flag.String("image", "", "store image file (required)")
	capacity := flag.Int64("capacity", 64<<20, "image capacity in bytes (fixed at init)")
	modelLatency := flag.Bool("latency", false, "model DCT983 NVMe latencies on top of the image (for bench)")
	clients := flag.Int("clients", 8, "concurrent client goroutines for serve")
	seed := flag.Int64("seed", 1, "rng seed for soak fault schedules")
	flag.Parse()
	if *image == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: leedctl -image FILE [-capacity N] [-clients N] [-seed N] {put K V | get K | del K | keys | stats | compact | load N | bench N | serve N | soak N}")
		os.Exit(2)
	}

	if flag.Arg(0) == "serve" {
		if err := serve(*image, *capacity, *clients, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}
	if flag.Arg(0) == "soak" {
		if err := soak(*image, *capacity, *seed, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	k := sim.New()
	defer k.Close()
	fileDev, err := flashsim.OpenFileDevice(k, *image, *capacity)
	if err != nil {
		fatal(err)
	}
	defer fileDev.Close()
	var dev flashsim.Device = fileDev
	if *modelLatency {
		dev = flashsim.NewLatencyShim(k, fileDev, flashsim.SamsungDCT983(*capacity))
	}

	// Geometry is a pure function of capacity, so every invocation
	// reconstructs the same layout.
	geo := core.PlanPartition(*capacity, 32, 1024, core.PlanOpts{})
	store := core.NewStore(core.StoreConfigFor(geo, core.Config{
		Env:    k,
		Device: dev,
	}))

	args := flag.Args()
	var cmdErr error
	k.Go("leedctl", func(p *sim.Proc) {
		if _, err := store.Recover(p); err != nil {
			cmdErr = fmt.Errorf("recover: %w", err)
			return
		}
		switch args[0] {
		case "put":
			if len(args) != 3 {
				cmdErr = fmt.Errorf("put needs KEY VALUE")
				return
			}
			if _, err := store.Put(p, []byte(args[1]), []byte(args[2])); err != nil {
				cmdErr = err
				return
			}
			fmt.Println("OK")
		case "get":
			if len(args) != 2 {
				cmdErr = fmt.Errorf("get needs KEY")
				return
			}
			v, _, err := store.Get(p, []byte(args[1]))
			if err != nil {
				cmdErr = err
				return
			}
			fmt.Println(string(v))
		case "del":
			if len(args) != 2 {
				cmdErr = fmt.Errorf("del needs KEY")
				return
			}
			if _, err := store.Del(p, []byte(args[1])); err != nil {
				cmdErr = err
				return
			}
			fmt.Println("OK")
		case "keys":
			cmdErr = store.Range(p, func(key, val []byte) bool {
				fmt.Printf("%s (%d bytes)\n", key, len(val))
				return true
			})
		case "stats":
			s := store.Stats()
			fmt.Printf("objects:        %d\n", store.Objects())
			fmt.Printf("index DRAM:     %d bytes\n", store.DRAMBytes())
			fmt.Printf("key log used:   %d / %d bytes (garbage %d)\n",
				store.KeyLog().Used(), store.KeyLog().Size(), store.KeyGarbage())
			fmt.Printf("value log used: %d / %d bytes (garbage %d)\n",
				store.ValLog().Used(), store.ValLog().Size(), store.ValGarbage())
			fmt.Printf("lifetime:       gets=%d puts=%d dels=%d compactions=%d\n",
				s.Gets, s.Puts, s.Dels, s.KeyCompactions+s.ValCompactions)
		case "compact":
			v, err := store.CompactValueLog(p)
			if err != nil {
				cmdErr = err
				return
			}
			kb, err := store.CompactKeyLog(p)
			if err != nil {
				cmdErr = err
				return
			}
			fmt.Printf("reclaimed %d value-log bytes, %d key-log bytes\n", v, kb)
		case "load":
			n := int64(10000)
			if len(args) > 1 {
				fmt.Sscanf(args[1], "%d", &n)
			}
			val := make([]byte, 256)
			for i := int64(0); i < n; i++ {
				if _, err := store.Put(p, ycsb.KeyAt(i), val); err != nil {
					cmdErr = fmt.Errorf("load at %d: %w", i, err)
					return
				}
			}
			fmt.Printf("loaded %d objects (%d total live)\n", n, store.Objects())
		case "bench":
			n := int64(20000)
			if len(args) > 1 {
				fmt.Sscanf(args[1], "%d", &n)
			}
			records := store.Objects()
			if records == 0 {
				cmdErr = fmt.Errorf("bench needs a loaded image (run load first)")
				return
			}
			gen := ycsb.NewGenerator(ycsb.WorkloadB, records, 256, 42)
			lat := sim.NewHistogram()
			start := p.Now()
			for i := int64(0); i < n; i++ {
				op := gen.Next()
				t0 := p.Now()
				var err error
				switch op.Type {
				case ycsb.OpRead:
					_, _, err = store.Get(p, op.Key)
				default:
					_, err = store.Put(p, op.Key, op.Value)
				}
				if err != nil && err != core.ErrNotFound {
					cmdErr = err
					return
				}
				lat.Record(p.Now() - t0)
				if store.NeedsValueCompaction() {
					store.CompactValueLog(p)
				}
				if store.NeedsKeyCompaction() {
					store.CompactKeyLog(p)
				}
			}
			elapsed := p.Now() - start
			fmt.Printf("YCSB-B: %d ops, simulated %v, latency %v\n", n, elapsed, lat)
		default:
			cmdErr = fmt.Errorf("unknown command %q", args[0])
			return
		}
		if err := store.Flush(p); err != nil {
			cmdErr = fmt.Errorf("flush: %w", err)
		}
	})
	k.Run()
	if cmdErr != nil {
		fatal(cmdErr)
	}
}

// serve runs the store on the wall-clock backend: N client goroutines issue
// a mixed PUT/GET/DEL stream against the image concurrently, then the store
// is flushed so a later invocation (any command) recovers the result.
func serve(image string, capacity int64, clients int, args []string) error {
	totalOps := int64(20000)
	if len(args) > 1 {
		fmt.Sscanf(args[1], "%d", &totalOps)
	}
	if clients < 1 {
		return fmt.Errorf("serve needs -clients >= 1")
	}

	env := wallclock.New()
	fileDev, err := flashsim.OpenFileDevice(env, image, capacity)
	if err != nil {
		return err
	}
	defer fileDev.Close()

	geo := core.PlanPartition(capacity, 32, 1024, core.PlanOpts{})
	store := core.NewStore(core.StoreConfigFor(geo, core.Config{
		Env:    env,
		Device: fileDev,
	}))

	var recoverErr error
	env.Spawn("recover", func(p runtime.Task) {
		_, recoverErr = store.Recover(p)
	})
	env.Wait()
	if recoverErr != nil {
		return fmt.Errorf("recover: %w", recoverErr)
	}

	// Latency histogram and error slot are shared without locks: the Env
	// execution contract (one running task at a time) protects them.
	lat := sim.NewHistogram()
	var opErr error
	perClient := totalOps / int64(clients)
	start := env.Now()
	for c := 0; c < clients; c++ {
		c := c
		env.Spawn("client", func(p runtime.Task) {
			// Disjoint keyspace per client keeps the run verifiable while
			// the interleaving stays scheduler-dependent.
			gen := ycsb.NewGenerator(ycsb.WorkloadA, perClient/2+1, 256, int64(c))
			for i := int64(0); i < perClient && opErr == nil; i++ {
				op := gen.Next()
				key := append([]byte(fmt.Sprintf("s%d-", c)), op.Key...)
				t0 := p.Now()
				var err error
				switch {
				case op.Type == ycsb.OpRead:
					_, _, err = store.Get(p, key)
				case i%31 == 30:
					_, err = store.Del(p, key)
				default:
					_, err = store.Put(p, key, op.Value)
				}
				if err != nil && err != core.ErrNotFound {
					opErr = fmt.Errorf("client %d: %w", c, err)
					return
				}
				lat.Record(p.Now() - t0)
				if store.NeedsValueCompaction() {
					store.CompactValueLog(p)
				}
				if store.NeedsKeyCompaction() {
					store.CompactKeyLog(p)
				}
			}
		})
	}
	env.Wait()
	if opErr != nil {
		return opErr
	}

	var flushErr error
	env.Spawn("flush", func(p runtime.Task) {
		flushErr = store.Flush(p)
	})
	env.Wait()
	if flushErr != nil {
		return fmt.Errorf("flush: %w", flushErr)
	}

	elapsed := env.Now() - start
	done := perClient * int64(clients)
	fmt.Printf("served %d ops from %d concurrent clients in %v (wall clock)\n", done, clients, elapsed)
	fmt.Printf("throughput: %.0f ops/s\n", float64(done)/elapsed.Seconds())
	fmt.Printf("latency:    %v\n", lat)
	fmt.Printf("live objects: %d\n", store.Objects())
	return nil
}

// soak reformats the image and runs the chaos durability soak on the
// wall-clock backend: N crash-recovery cycles of seeded writes with a
// device-fault window in each, verifying after every recovery that all
// acknowledged writes survive. A stale image cannot be reused — its old
// high-sequence buckets would confuse the recovery scan — so the file is
// recreated from scratch.
func soak(image string, capacity int64, seed int64, args []string) error {
	cycles := 0 // 0 = chaos default
	if len(args) > 1 {
		fmt.Sscanf(args[1], "%d", &cycles)
	}
	if err := os.Remove(image); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("reformat %s: %w", image, err)
	}

	env := wallclock.New()
	fileDev, err := flashsim.OpenFileDevice(env, image, capacity)
	if err != nil {
		return err
	}
	defer fileDev.Close()

	var rep *chaos.SoakReport
	env.Spawn("soak", func(p runtime.Task) {
		rep = chaos.RunSoak(p, chaos.SoakConfig{
			Env:    env,
			Seed:   seed,
			Cycles: cycles,
			Device: fileDev,
		})
	})
	env.Wait()
	fmt.Print(rep)
	if !rep.Pass {
		return fmt.Errorf("soak failed with %d violation(s)", len(rep.Violations))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leedctl:", err)
	os.Exit(1)
}
