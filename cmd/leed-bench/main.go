// Command leed-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	leed-bench -exp fig5                 # one experiment, full scale
//	leed-bench -exp tab3 -scale quick    # smoke scale
//	leed-bench -exp all                  # everything (slow)
//	leed-bench -exp fig6 -workloads YCSB-B,YCSB-C
//
// Experiment ids match DESIGN.md's per-experiment index: tab1, fig1, tab3,
// fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"leed/internal/bench"
	"leed/internal/ycsb"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (tab1, fig1, tab3, fig5..fig14, all)")
	scale := flag.String("scale", "full", "quick | full")
	workloadsFlag := flag.String("workloads", "", "comma-separated YCSB workload names (default: all six)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON (one object per experiment) instead of aligned tables")
	sizesFlag := flag.String("sizes", "", "comma-separated object sizes in bytes (default: 256,1024)")
	flag.Parse()

	sc := bench.Full
	if *scale == "quick" {
		sc = bench.Quick
	}
	var workloads []ycsb.Workload
	if *workloadsFlag != "" {
		for _, name := range strings.Split(*workloadsFlag, ",") {
			w, ok := ycsb.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
				os.Exit(2)
			}
			workloads = append(workloads, w)
		}
	}
	var sizes []int
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			var v int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil {
				fmt.Fprintf(os.Stderr, "bad size %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
	}

	show := func(t *bench.Table) {
		switch {
		case *jsonOut:
			fmt.Print(t.JSON())
		case *csv:
			fmt.Print(t.CSV())
		default:
			fmt.Println(t)
		}
	}
	run := map[string]func(){
		"tab1":  func() { show(bench.Tab1()) },
		"fig1":  func() { _, t := bench.Fig1(); show(t) },
		"tab3":  func() { _, t := bench.Tab3(sc); show(t) },
		"fig5":  func() { _, t := bench.Fig5(sc, workloads, sizes); show(t) },
		"fig6":  func() { _, t := bench.Fig6(sc, 1024, workloads); show(t) },
		"fig7":  func() { _, t := bench.Fig7(sc); show(t) },
		"fig8":  func() { _, t := bench.Fig8(sc); show(t) },
		"fig9":  func() { _, t := bench.Fig9(sc); show(t) },
		"fig10": func() { _, t := bench.Fig10(sc, sizes); show(t) },
		"fig11": func() { _, t := bench.Fig11(sc); show(t) },
		"fig12": func() { _, t := bench.Fig12(sc); show(t) },
		"fig13": func() {
			_, ta := bench.Fig13a(sc)
			show(ta)
			_, tb := bench.Fig13b(sc)
			show(tb)
		},
		"fig14":      func() { _, t := bench.Fig14(sc, workloads); show(t) },
		"craq":       func() { _, t := bench.AblationCRAQ(sc); show(t) },
		"segdensity": func() { _, t := bench.AblationSegDensity(sc); show(t) },
	}
	order := []string{"tab1", "fig1", "tab3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "craq", "segdensity"}

	if *exp == "all" {
		for _, id := range order {
			fmt.Printf("--- %s ---\n", id)
			run[id]()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; ids: %s, all\n", *exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	fn()
}
