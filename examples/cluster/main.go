// Cluster: a replicated 3-JBOF LEED deployment with CRRS reads and a live
// node join/leave (§3.7-§3.8).
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"leed"
)

func main() {
	k := leed.NewKernel()
	defer k.Close()

	c := leed.NewCluster(leed.ClusterConfig{
		Env:           k,
		NumJBOFs:      3,
		SpareJBOFs:    1, // built but not joined yet
		SSDsPerJBOF:   4,
		SSDCapacity:   64 << 20,
		NumPartitions: 12,
		R:             3,
		KeyLen:        16,
		ValLen:        256,
		NumClients:    2,
		CRRS:          true,
		FlowControl:   true,
		Swap:          true,
	})
	c.Start()
	k.Run(k.Now() + 5*leed.Millisecond) // settle: nodes up, views delivered
	fmt.Printf("cluster up: %v, members %v\n", c, c.MemberIDs())

	done := false
	k.Go("demo", func(p *leed.Proc) {
		defer func() { done = true }()
		cl := c.Clients[0]

		// Write through the chains; each PUT commits at its tail replica.
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("item-%04d", i))
			if _, err := cl.Put(p, key, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
				log.Fatalf("put: %v", err)
			}
		}
		fmt.Println("wrote 200 keys (replicated 3 ways)")

		// CRRS lets any clean replica serve reads, not just the tail.
		v, lat, err := cl.Get(p, []byte("item-0042"))
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		fmt.Printf("item-0042 -> %q (%v)\n", v, lat)

		// Join the spare JBOF: the control plane re-replicates ranges to
		// it via COPY while the cluster keeps serving.
		spare := c.NodeIDs[3]
		fmt.Printf("joining node %d...\n", spare)
		c.Join(spare)
		for i := 0; i < 3000; i++ {
			if st, ok := c.Manager.State(spare); ok && st.String() == "RUNNING" {
				break
			}
			p.Sleep(leed.Millisecond)
		}
		fmt.Printf("node %d RUNNING; members %v\n", spare, c.MemberIDs())

		// Every key is still readable.
		missing := 0
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("item-%04d", i))
			if _, _, err := cl.Get(p, key); err != nil {
				missing++
			}
		}
		fmt.Printf("after join: %d/200 keys missing\n", missing)

		// And leave again; its ranges move back to the survivors.
		fmt.Printf("leaving node %d...\n", spare)
		c.Leave(spare)
		for i := 0; i < 5000; i++ {
			if _, ok := c.Manager.State(spare); !ok {
				break
			}
			p.Sleep(leed.Millisecond)
		}
		missing = 0
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("item-%04d", i))
			if _, _, err := cl.Get(p, key); err != nil {
				missing++
			}
		}
		fmt.Printf("after leave: %d/200 keys missing; members %v\n", missing, c.MemberIDs())
	})

	for !done && k.Now() < 600*leed.Second {
		k.Run(k.Now() + 10*leed.Millisecond)
	}
	fmt.Printf("simulated time: %v, backend energy: %.1f J\n", k.Now(), c.Energy())
}
