// YCSB: the paper's headline experiment in miniature — run YCSB-B against a
// LEED cluster and report throughput, latency percentiles, and requests per
// Joule (§4.3).
//
//	go run ./examples/ycsb
package main

import (
	"fmt"

	"leed"
)

func main() {
	k := leed.NewKernel()
	defer k.Close()

	c := leed.NewCluster(leed.ClusterConfig{
		Env:           k,
		NumJBOFs:      3,
		SSDsPerJBOF:   4,
		SSDCapacity:   64 << 20,
		NumPartitions: 12,
		R:             3,
		KeyLen:        16,
		ValLen:        256,
		NumClients:    4,
		CRRS:          true,
		FlowControl:   true,
		Swap:          true,
	})
	c.Start()
	k.Run(k.Now() + 5*leed.Millisecond) // settle: nodes up, views delivered

	const (
		records = 2000
		ops     = 8000
		workers = 64
	)
	gen := leed.NewGenerator(leed.WorkloadB, records, 256, 42)
	lat := leed.NewHistogram()

	// Preload the keyspace.
	loaded := 0
	for w := 0; w < 16; w++ {
		k.Go("load", func(p *leed.Proc) {
			for loaded < records {
				i := loaded
				loaded++
				cl := c.Clients[i%len(c.Clients)]
				cl.Put(p, []byte(fmt.Sprintf("user%012d", i)), make([]byte, 256))
			}
		})
	}
	for loaded < records && !k.Idle() {
		k.Run(k.Now() + 10*leed.Millisecond)
	}
	fmt.Printf("preloaded %d objects at t=%v\n", loaded, k.Now())

	// Measured run: closed loop, 64 concurrent clients.
	startT := k.Now()
	startJ := c.Energy()
	issued, completed := 0, 0
	for w := 0; w < workers; w++ {
		w := w
		k.Go("worker", func(p *leed.Proc) {
			cl := c.Clients[w%len(c.Clients)]
			for issued < ops {
				issued++
				op := gen.Next()
				t0 := p.Now()
				var err error
				if op.Value == nil {
					_, _, err = cl.Get(p, op.Key)
				} else {
					_, err = cl.Put(p, op.Key, append([]byte(nil), op.Value...))
				}
				if err == nil || err == leed.ErrNotFound {
					lat.Record(p.Now() - t0)
				}
				completed++
			}
		})
	}
	for completed < ops && !k.Idle() {
		k.Run(k.Now() + 10*leed.Millisecond)
	}
	elapsed := k.Now() - startT
	joules := c.Energy() - startJ

	thr := float64(completed) / elapsed.Seconds()
	fmt.Printf("\nYCSB-B, 256B objects, 3 SmartNIC JBOFs, R=3\n")
	fmt.Printf("  throughput : %.0f ops/s\n", thr)
	fmt.Printf("  latency    : %v\n", lat)
	fmt.Printf("  power      : %.1f W\n", joules/elapsed.Seconds())
	fmt.Printf("  efficiency : %.0f queries/Joule\n", float64(completed)/joules)
}
