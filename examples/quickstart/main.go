// Quickstart: the LEED data store API on a single in-memory device.
//
// Demonstrates the per-SSD store from §3.2-§3.3 of the paper: PUT/GET/DEL
// through the circular key/value logs and the DRAM segment-table index,
// then an explicit compaction reclaiming overwrite garbage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"leed"
)

func main() {
	k := leed.NewKernel()
	defer k.Close()

	// 256 segments, 4MiB key log, 8MiB value log on a zero-latency device.
	store := leed.NewMemStore(k, 256, 4<<20, 8<<20)

	k.Go("quickstart", func(p *leed.Proc) {
		// Basic CRUD.
		if _, err := store.Put(p, []byte("user:alice"), []byte("tier=gold")); err != nil {
			log.Fatalf("put: %v", err)
		}
		val, _, err := store.Get(p, []byte("user:alice"))
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		fmt.Printf("user:alice -> %q\n", val)

		// Overwrites append to the logs; the old copies become garbage.
		for i := 0; i < 1000; i++ {
			v := fmt.Sprintf("tier=gold;visits=%d", i)
			if _, err := store.Put(p, []byte("user:alice"), []byte(v)); err != nil {
				log.Fatalf("overwrite: %v", err)
			}
		}
		fmt.Printf("after 1000 overwrites: value-log garbage = %d bytes\n", store.ValGarbage())

		// Compaction relocates live data and reclaims the rest (§3.3.1).
		var reclaimed int64
		for store.ValGarbage() > 0 {
			n, err := store.CompactValueLog(p)
			if err != nil {
				log.Fatalf("compact: %v", err)
			}
			if n == 0 {
				break
			}
			reclaimed += n
		}
		for store.KeyGarbage() > 0 {
			n, err := store.CompactKeyLog(p)
			if err != nil {
				log.Fatalf("compact key log: %v", err)
			}
			if n == 0 {
				break
			}
			reclaimed += n
		}
		fmt.Printf("compaction reclaimed %d bytes in %d value-log rounds\n",
			reclaimed, store.Stats().ValCompactions)

		// Data survives compaction.
		val, _, err = store.Get(p, []byte("user:alice"))
		if err != nil {
			log.Fatalf("get after compaction: %v", err)
		}
		fmt.Printf("user:alice -> %q\n", val)

		// Deletion markers.
		if _, err := store.Del(p, []byte("user:alice")); err != nil {
			log.Fatalf("del: %v", err)
		}
		if _, _, err := store.Get(p, []byte("user:alice")); err == leed.ErrNotFound {
			fmt.Println("user:alice deleted")
		}

		fmt.Printf("index DRAM: %d bytes for the whole store\n", store.DRAMBytes())
	})
	k.Run()
}
