// Swapping: the intra-JBOF write-imbalance mechanism of §3.6, demonstrated
// on one SmartNIC JBOF. One drive is flooded with PUTs while the other
// three idle; the engine redirects both the value entries and the segment
// arrays into a helper drive's swap region, then merges them back once the
// burst passes.
//
//	go run ./examples/swapping
package main

import (
	"fmt"

	"leed/internal/core"
	"leed/internal/engine"
	"leed/internal/platform"
	"leed/internal/rpcproto"
	"leed/internal/sim"
)

func main() {
	k := sim.New()
	defer k.Close()
	node := platform.NewNode(k, platform.Stingray(), 4, 256<<20, 1)
	eng := engine.New(engine.Config{
		Env:              k,
		Node:             node,
		PartitionsPerSSD: 1,
		Geometry: core.Geometry{
			NumSegments: 512, KeyLogBytes: 16 << 20, ValLogBytes: 32 << 20, SwapLogBytes: 8 << 20,
		},
		PartitionBytes: 64 << 20,
		SwapEnabled:    true,
		SwapThreshold:  8, // sensitive trigger for the demo
	})
	eng.Start()

	const burst = 2000
	done := 0
	for i := 0; i < burst; i++ {
		i := i
		k.Go("writer", func(p *sim.Proc) {
			key := []byte(fmt.Sprintf("burst-%05d", i))
			// Every write targets partition 0 = drive 0: a pathological
			// burst, exactly what §3.6 is for.
			if _, _, err := eng.Execute(p, 0, rpcproto.OpPut, key, make([]byte, 1024)); err != nil {
				fmt.Println("put error:", err)
			}
			done++
		})
	}
	k.Run(2 * sim.Second)
	fmt.Printf("burst of %d PUTs to one drive: %d completed at t=%v\n", burst, done, k.Now())
	fmt.Printf("swapped to helpers: %d PUTs (%.0f%%)\n",
		eng.Stats().Swapped, 100*float64(eng.Stats().Swapped)/burst)
	for i, ssd := range node.SSDs {
		s := ssd.Stats()
		fmt.Printf("  drive %d: %d writes, %d reads\n", i, s.Writes, s.Reads)
	}

	// Let the background compactor merge the swapped data home.
	k.Go("wait", func(p *sim.Proc) {
		for eng.Partition(0).Store.SwapBacklog() > 0 {
			p.Sleep(sim.Millisecond)
		}
	})
	k.Run(10 * sim.Second)
	eng.Stop()
	fmt.Printf("after merge-back: backlog=%d, merged=%d entries\n",
		eng.Partition(0).Store.SwapBacklog(), eng.Partition(0).Store.Stats().MergedSwaps)

	// Everything is readable from the home store.
	missing := 0
	k.Go("verify", func(p *sim.Proc) {
		for i := 0; i < burst; i++ {
			key := []byte(fmt.Sprintf("burst-%05d", i))
			if _, _, err := eng.Execute(p, 0, rpcproto.OpGet, key, nil); err != nil {
				missing++
			}
		}
	})
	k.Run(20 * sim.Second)
	fmt.Printf("verification: %d/%d keys missing\n", missing, burst)
}
