// Failover: fail-stop a JBOF mid-workload and watch the heartbeat detector,
// chain repair, and dirty-bit commitment keep every committed write
// readable (§3.8.2).
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"leed"
)

func main() {
	k := leed.NewKernel()
	defer k.Close()

	c := leed.NewCluster(leed.ClusterConfig{
		Env:           k,
		NumJBOFs:      3,
		SpareJBOFs:    1,
		SSDsPerJBOF:   4,
		SSDCapacity:   64 << 20,
		NumPartitions: 12,
		R:             3,
		KeyLen:        16,
		ValLen:        256,
		NumClients:    2,
		CRRS:          true,
		FlowControl:   true,
	})
	c.Start()
	k.Run(k.Now() + 5*leed.Millisecond) // settle: nodes up, views delivered

	done := false
	k.Go("demo", func(p *leed.Proc) {
		defer func() { done = true }()
		cl := c.Clients[0]

		// Commit a set of writes.
		committed := map[string]string{}
		for i := 0; i < 150; i++ {
			key := fmt.Sprintf("acct-%04d", i)
			val := fmt.Sprintf("balance=%d", i*100)
			if _, err := cl.Put(p, []byte(key), []byte(val)); err == nil {
				committed[key] = val
			}
		}
		fmt.Printf("committed %d writes across 3 JBOFs (R=3)\n", len(committed))

		// Fail-stop one JBOF. Depending on the partition it is a chain
		// head, mid, or tail — §3.8.2 covers all three.
		victim := c.NodeIDs[1]
		fmt.Printf("t=%v: killing node %d\n", p.Now(), victim)
		c.Kill(victim)

		// Writes keep flowing through the failure window (client retries
		// absorb the view change).
		ok := 0
		for i := 0; i < 60; i++ {
			key := fmt.Sprintf("during-%02d", i)
			if _, err := cl.Put(p, []byte(key), []byte("v")); err == nil {
				committed[key] = "v"
				ok++
			}
		}
		fmt.Printf("during failover: %d/60 writes succeeded\n", ok)

		// Wait for the heartbeat detector and re-replication to finish.
		for i := 0; i < 5000; i++ {
			if _, present := c.Manager.State(victim); !present {
				break
			}
			p.Sleep(leed.Millisecond)
		}
		fmt.Printf("t=%v: node %d evicted; members %v\n", p.Now(), victim, c.MemberIDs())
		p.Sleep(50 * leed.Millisecond)

		// Every committed write survives on the remaining replicas.
		lost := 0
		for key, want := range committed {
			v, _, err := cl.Get(p, []byte(key))
			if err != nil || string(v) != want {
				lost++
			}
		}
		fmt.Printf("verification: %d/%d committed writes lost\n", lost, len(committed))
	})

	for !done && k.Now() < 600*leed.Second {
		k.Run(k.Now() + 10*leed.Millisecond)
	}
	fmt.Printf("simulated time: %v\n", k.Now())
}
