module leed

go 1.22
