package leed

import (
	"bytes"
	"fmt"
	"testing"
)

// The facade tests exercise the public API end to end, doubling as
// documentation for the patterns in examples/.

func TestFacadeStoreCRUD(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	s := NewMemStore(k, 64, 1<<20, 2<<20)
	k.Go("t", func(p *Proc) {
		if _, err := s.Put(p, []byte("k"), []byte("v")); err != nil {
			t.Errorf("put: %v", err)
		}
		v, _, err := s.Get(p, []byte("k"))
		if err != nil || string(v) != "v" {
			t.Errorf("get: %q, %v", v, err)
		}
		if _, err := s.Del(p, []byte("k")); err != nil {
			t.Errorf("del: %v", err)
		}
		if _, _, err := s.Get(p, []byte("k")); err != ErrNotFound {
			t.Errorf("get after del: %v", err)
		}
	})
	k.Run()
}

func TestFacadeSSDStoreHasLatency(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	s := NewSSDStore(k, 64<<20, 64, 4<<20, 8<<20)
	var lat Time
	k.Go("t", func(p *Proc) {
		s.Put(p, []byte("k"), []byte("v"))
		t0 := p.Now()
		s.Get(p, []byte("k"))
		lat = p.Now() - t0
	})
	k.Run()
	if lat < 80*Microsecond {
		t.Fatalf("GET latency %v too low for two NVMe accesses", lat)
	}
}

func TestFacadeCluster(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	c := NewCluster(ClusterConfig{
		Env: k, NumJBOFs: 3, SSDsPerJBOF: 4, SSDCapacity: 48 << 20,
		NumPartitions: 8, R: 3, KeyLen: 16, ValLen: 64, NumClients: 1,
		CRRS: true, FlowControl: true, Swap: true,
	})
	c.Start()
	k.Run(k.Now() + 5*Millisecond) // settle: nodes up, views delivered
	done := false
	k.Go("t", func(p *Proc) {
		defer func() { done = true }()
		cl := c.Clients[0]
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("k%02d", i))
			if _, err := cl.Put(p, key, []byte("v")); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("k%02d", i))
			if v, _, err := cl.Get(p, key); err != nil || string(v) != "v" {
				t.Errorf("get %d: %q, %v", i, v, err)
				return
			}
		}
	})
	for !done && k.Now() < 60*Second {
		k.Run(k.Now() + 10*Millisecond)
	}
	if !done {
		t.Fatal("driver timed out")
	}
	if c.Energy() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestFacadeGenerator(t *testing.T) {
	g := NewGenerator(WorkloadA, 100, 32, 1)
	reads := 0
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Value == nil {
			reads++
		}
	}
	if reads < 400 || reads > 600 {
		t.Fatalf("YCSB-A reads = %d/1000", reads)
	}
}

func TestFacadeHistogram(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(Time(i) * Microsecond)
	}
	if h.Count() != 100 || h.Min() != Microsecond {
		t.Fatalf("%v", h)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	gen := NewGenerator(WorkloadA, 100, 32, 4)
	ops := RecordTrace(gen, 50)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var src OpSource = rep
	for i := 0; i < 50; i++ {
		op := src.Next()
		if string(op.Key) != string(ops[i].Key) {
			t.Fatalf("op %d key mismatch", i)
		}
	}
}
